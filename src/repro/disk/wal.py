"""Content-carrying write-ahead log (physical redo).

Each record holds the actual :class:`~repro.storage.ops.PageOp` list of one
committed (or pre-committed) transaction, stamped with a monotone LSN and a
CRC32 checksum over its canonical serialization.  The log distinguishes the
*believed*-fsynced prefix (``synced_through``, what ``fsync()`` reported)
from the *truly durable* prefix (``_durable_through``): the two only differ
under the fsync-lie storage-fault mode, where the device acknowledges a
flush without persisting it.

The crash/recovery model is explicit:

- :meth:`crash` applies the storage loss model — everything beyond the
  durable prefix is lost; if a torn write was armed, the first lost record
  survives as a partially-written (checksum-failing) tail.
- :meth:`recover_records` is the restart-time scan: records are validated
  in LSN order and the log is truncated at the first bad checksum (the
  torn-tail rule — a redo log cannot skip holes).
- :meth:`truncate` drops a checkpoint-covered prefix, clamped so that
  un-fsynced or un-durable records are never silently discarded and the
  fsync accounting can never go negative.

The cost model still uses the same size accounting (48-byte record header
plus the delta-encoded op payload) so log-write and replay-I/O charges are
unchanged.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.common.counters import Counters
from repro.obs import NULL_TRACER, Tracer
from repro.storage.ops import PageOp, ops_size

VersionsArg = Union[Mapping[str, int], Sequence[Tuple[str, int]]]


def _canonical_versions(versions: VersionsArg) -> Tuple[Tuple[str, int], ...]:
    if isinstance(versions, Mapping):
        return tuple(sorted(versions.items()))
    return tuple(sorted(versions))


def _record_checksum(
    lsn: int,
    txn_id: int,
    master_id: str,
    seq: int,
    versions: Tuple[Tuple[str, int], ...],
    ops: Tuple[PageOp, ...],
    queries: Tuple[Tuple[str, Tuple], ...],
) -> int:
    payload = repr((lsn, txn_id, master_id, seq, versions, ops, queries))
    return zlib.crc32(payload.encode("utf-8")) or 1


@dataclass(frozen=True)
class WalRecord:
    """One redo record: the ops of a single transaction, sealed by a CRC."""

    txn_id: int
    nbytes: int
    queries: Tuple[Tuple[str, Tuple], ...] = ()
    lsn: int = 0
    ops: Tuple[PageOp, ...] = ()
    versions: Tuple[Tuple[str, int], ...] = ()  # sorted (table, version)
    master_id: str = ""
    seq: int = 0
    checksum: int = 0

    def verify(self) -> bool:
        """True if the stored checksum matches the record content.

        A zero checksum marks a legacy/unsealed record and always verifies
        (the disk tier's size-only records predate content checksums).
        """
        if self.checksum == 0:
            return True
        return self.checksum == _record_checksum(
            self.lsn,
            self.txn_id,
            self.master_id,
            self.seq,
            self.versions,
            self.ops,
            self.queries,
        )

    def dedup_key(self) -> Tuple[str, int, Tuple[Tuple[str, int], ...]]:
        """The replication dedup identity of the logged write-set."""
        return (self.master_id, self.seq, self.versions)


class WriteAheadLog:
    """Append-only checksummed redo log with an explicit durable prefix."""

    def __init__(
        self, counters: Optional[Counters] = None, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self.tracer = tracer
        self._records: List[WalRecord] = []
        self.total_bytes = 0
        self.synced_through = 0  # index of the first record believed un-fsynced
        self._durable_through = 0  # index of the first record NOT on the platter
        self.next_lsn = 0
        self.fsync_lies = False  # storage acks fsync without persisting
        self._torn_armed = False  # next crash tears the first lost record
        self._corrupt_lsns: Set[int] = set()  # latent bit-flipped records

    @property
    def base_lsn(self) -> int:
        """LSN of the oldest retained record (== ``next_lsn`` when empty)."""
        return self._records[0].lsn if self._records else self.next_lsn

    @property
    def durable_through(self) -> int:
        """Index of the first record that is *not* truly on stable storage."""
        return self._durable_through

    def append_commit(
        self,
        txn_id: int,
        ops: Sequence[PageOp],
        queries: Sequence[Tuple[str, Tuple]] = (),
        versions: VersionsArg = (),
        master_id: str = "",
        seq: int = 0,
    ) -> WalRecord:
        ops = tuple(ops)
        queries = tuple(queries)
        canonical = _canonical_versions(versions)
        lsn = self.next_lsn
        self.next_lsn += 1
        checksum = _record_checksum(
            lsn, txn_id, master_id, seq, canonical, ops, queries
        )
        record = WalRecord(
            txn_id,
            48 + ops_size(ops),
            queries,
            lsn=lsn,
            ops=ops,
            versions=canonical,
            master_id=master_id,
            seq=seq,
            checksum=checksum,
        )
        self._records.append(record)
        self.total_bytes += record.nbytes
        self.counters.add("wal.records")
        self.counters.add("wal.bytes", record.nbytes)
        return record

    def fsync(self) -> int:
        """Force the log; returns how many records were flushed.

        Advances the believed-synced boundary always; the durable boundary
        only when the storage is honest (``fsync_lies`` is False).
        """
        flushed = len(self._records) - self.synced_through
        self.synced_through = len(self._records)
        if not self.fsync_lies:
            self._durable_through = len(self._records)
        self.counters.add("wal.fsyncs")
        if self.tracer.enabled:
            self.tracer.instant("flush_fsync", kind="wal", records=flushed)
        return flushed

    def records_since(self, index: int) -> List[WalRecord]:
        return self._records[index:]

    def bytes_since(self, index: int) -> int:
        return sum(r.nbytes for r in self._records[index:])

    def truncate(self, keep_from: int) -> int:
        """Drop records before ``keep_from`` (checkpoint advanced).

        ``keep_from`` is clamped to the fsynced *and* durable boundaries:
        truncation is checkpoint-coordinated, and a checkpoint can only
        cover records that actually reached stable storage — dropping an
        unsynced record here would both lose redo and drive the
        ``records_since``/fsync accounting negative.  Returns the number of
        records actually dropped.
        """
        keep_from = max(
            0,
            min(keep_from, self.synced_through, self._durable_through, len(self._records)),
        )
        if keep_from == 0:
            return 0
        dropped = self._records[:keep_from]
        self._records = self._records[keep_from:]
        self.total_bytes -= sum(r.nbytes for r in dropped)
        self.synced_through -= keep_from
        self._durable_through -= keep_from
        for record in dropped:
            self._corrupt_lsns.discard(record.lsn)
        return keep_from

    def truncate_for_checkpoint(self, version_floor: Mapping[str, int]) -> int:
        """Checkpoint-coordinated truncation.

        Drops the longest durable prefix whose records are fully covered by
        ``version_floor`` — the per-table version that the checkpoint is
        guaranteed to contain for *every* page.  Stops at the first record
        with an uncovered (or unknown) table version; redo must stay
        contiguous.  Returns the number of records dropped.
        """
        boundary = min(self.synced_through, self._durable_through)
        keep_from = 0
        for record in self._records[:boundary]:
            if not record.versions:
                break  # size-only record: cannot prove coverage
            if all(v <= version_floor.get(t, -1) for t, v in record.versions):
                keep_from += 1
            else:
                break
        dropped = self.truncate(keep_from)
        if dropped:
            self.counters.add("wal.truncated_records", dropped)
        return dropped

    # -- storage-fault model -------------------------------------------------------
    def set_fsync_lies(self, lying: bool) -> None:
        """Enter/leave fsync-lie mode (acks without durability)."""
        self.fsync_lies = bool(lying)

    def arm_torn_write(self) -> None:
        """The next :meth:`crash` leaves a torn (checksum-failing) tail record."""
        self._torn_armed = True

    def corrupt_record(self, index: int) -> Optional[int]:
        """Flip a bit in the record at ``index`` (latent media corruption).

        The damage is only observed by :meth:`recover_records` — exactly
        like a real latent sector error.  Returns the corrupted LSN, or
        None when the log is empty.
        """
        if not self._records:
            return None
        index = max(0, min(index, len(self._records) - 1))
        lsn = self._records[index].lsn
        self._corrupt_lsns.add(lsn)
        self.counters.add("wal.bitflips")
        return lsn

    def crash(self) -> List[WalRecord]:
        """Apply the crash loss model; returns the records that were lost.

        Everything beyond the durable prefix vanishes — including records
        the caller believed fsynced, when the storage was lying.  If a torn
        write was armed, the crash interrupted the log's last sector write:
        the first lost record stays on disk as a partially-written tail —
        or, when the log was fully flushed, the final durable record itself
        is torn (its last sectors never truly landed).  Either way the torn
        record is present but fails checksum validation at recovery.
        Resets both boundaries to the surviving length.
        """
        boundary = min(self._durable_through, len(self._records))
        lost = self._records[boundary:]
        survivors = self._records[:boundary]
        if self._torn_armed:
            if lost:
                torn = lost[0]
                survivors = survivors + [torn]
            elif survivors:
                torn = survivors[-1]
            else:
                torn = None
            if torn is not None:
                self._corrupt_lsns.add(torn.lsn)
        self._records = survivors
        self.total_bytes = sum(r.nbytes for r in self._records)
        self.synced_through = len(self._records)
        self._durable_through = len(self._records)
        self._torn_armed = False
        return lost

    def recover_records(self) -> Tuple[List[WalRecord], int]:
        """Restart-time scan: validate checksums, truncate the torn tail.

        Walks the log in LSN order; the first record that fails validation
        (torn write or latent bit flip) ends the recoverable prefix — redo
        cannot skip holes, so everything from that point on is discarded.
        Returns ``(valid_records, truncated_count)``.
        """
        valid: List[WalRecord] = []
        for record in self._records:
            if record.lsn in self._corrupt_lsns or not record.verify():
                break
            valid.append(record)
        truncated = len(self._records) - len(valid)
        if truncated:
            for record in self._records[len(valid):]:
                self._corrupt_lsns.discard(record.lsn)
            self._records = list(valid)
            self.total_bytes = sum(r.nbytes for r in self._records)
            self.synced_through = len(valid)
            self._durable_through = len(valid)
            self.counters.add("wal.torn_tail_records", truncated)
        return list(self._records), truncated

    def __len__(self) -> int:
        return len(self._records)
