"""Write-ahead log for the on-disk database.

Tracks logical size and record counts so the cost model can charge log
writes and the recovery path can charge sequential replay I/O.  Log records
are the redo page-ops of committed transactions (physical redo), plus the
query text for cross-replica replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.counters import Counters
from repro.obs import NULL_TRACER, Tracer
from repro.storage.ops import PageOp, ops_size


@dataclass(frozen=True)
class WalRecord:
    txn_id: int
    nbytes: int
    queries: Tuple[Tuple[str, Tuple], ...] = ()


class WriteAheadLog:
    """Append-only redo log with size accounting and truncation."""

    def __init__(
        self, counters: Optional[Counters] = None, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self.tracer = tracer
        self._records: List[WalRecord] = []
        self.total_bytes = 0
        self.synced_through = 0  # index of the first un-fsynced record

    def append_commit(
        self,
        txn_id: int,
        ops: Sequence[PageOp],
        queries: Sequence[Tuple[str, Tuple]] = (),
    ) -> WalRecord:
        record = WalRecord(txn_id, 48 + ops_size(ops), tuple(queries))
        self._records.append(record)
        self.total_bytes += record.nbytes
        self.counters.add("wal.records")
        self.counters.add("wal.bytes", record.nbytes)
        return record

    def fsync(self) -> int:
        """Force the log; returns how many records were flushed."""
        flushed = len(self._records) - self.synced_through
        self.synced_through = len(self._records)
        self.counters.add("wal.fsyncs")
        if self.tracer.enabled:
            self.tracer.instant("flush_fsync", kind="wal", records=flushed)
        return flushed

    def records_since(self, index: int) -> List[WalRecord]:
        return self._records[index:]

    def bytes_since(self, index: int) -> int:
        return sum(r.nbytes for r in self._records[index:])

    def truncate(self, keep_from: int) -> None:
        """Drop records before ``keep_from`` (checkpoint advanced)."""
        dropped = self._records[:keep_from]
        self._records = self._records[keep_from:]
        self.total_bytes -= sum(r.nbytes for r in dropped)
        self.synced_through = max(0, self.synced_through - keep_from)

    def __len__(self) -> int:
        return len(self._records)
