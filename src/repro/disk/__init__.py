"""The on-disk database tier (MySQL/InnoDB stand-in).

Used two ways, exactly as in the paper:

* as the **persistence back-end** of the DMV system — the scheduler streams
  logged update queries to one or two of these for durability;
* as the **baseline** — a stand-alone (Figure 3) or replicated (Figures
  5(a,b), 6) on-disk tier whose failover requires replaying an on-disk log.

The query engine is shared with the in-memory tier; the disk personality
adds a bounded buffer pool (misses cost disk reads), a write-ahead log with
per-commit fsync, and serializable page-granular 2PL where readers block on
writers (the concurrency the paper configured InnoDB for).
"""

from repro.disk.diskmodel import DiskModel
from repro.disk.wal import WriteAheadLog
from repro.disk.database import DiskController, DiskDatabase

__all__ = ["DiskModel", "WriteAheadLog", "DiskDatabase", "DiskController"]
