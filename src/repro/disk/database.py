"""The on-disk database: buffer pool + WAL + serializable 2PL.

One :class:`DiskDatabase` is one InnoDB-like replica.  Query execution
reuses the shared engine and SQL executor; every page access goes through a
*bounded* buffer pool whose misses the simulation charges as random disk
reads, and every commit appends to the WAL and forces it (group commit is a
calibration knob).  Recovery/refresh replays logged queries.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.common.counters import Counters
from repro.common.ids import NodeId
from repro.common.versions import VersionVector
from repro.disk.diskmodel import DiskModel
from repro.disk.wal import WriteAheadLog
from repro.engine.engine import HeapEngine, TwoPhaseLocking
from repro.engine.locks import LockManager
from repro.engine.schema import TableSchema
from repro.engine.txn import Transaction, TxnMode
from repro.scheduler.querylog import LoggedUpdate
from repro.sql.executor import ResultSet, SqlExecutor
from repro.storage.cache import PageCache


class DiskController(TwoPhaseLocking):
    """Serializable page 2PL plus buffer-pool residency accounting."""

    def __init__(self, pool: PageCache, manager: Optional[LockManager] = None) -> None:
        super().__init__(manager)
        self.pool = pool

    def before_read(self, txn, page) -> None:
        self.pool.touch(page.page_id)
        super().before_read(txn, page)

    def before_write(self, txn, page) -> None:
        self.pool.touch(page.page_id)
        super().before_write(txn, page)


class DiskDatabase:
    """One on-disk replica: engine + buffer pool + WAL + replay support."""

    def __init__(
        self,
        node_id: NodeId,
        pool_pages: int = 2048,
        disk: Optional[DiskModel] = None,
        counters: Optional[Counters] = None,
        now: Optional[Callable[[], float]] = None,
        rows_per_page: int = 64,
        tracer=None,
    ) -> None:
        self.node_id = node_id
        self.counters = counters if counters is not None else Counters()
        self.disk = disk if disk is not None else DiskModel()
        self.pool = PageCache(pool_pages, self.counters)
        self.engine = HeapEngine(
            controller=DiskController(self.pool),
            counters=self.counters,
            name=f"disk:{node_id}",
            rows_per_page=rows_per_page,
        )
        if tracer is None:
            from repro.obs import NULL_TRACER as tracer  # local alias, no cycle
        self.wal = WriteAheadLog(self.counters, tracer=tracer)
        self.sql = SqlExecutor(self.engine, now=now)
        #: Queries of the currently-open update transactions (for the WAL).
        self._txn_queries: Dict[int, list] = {}

    # -- schema / load -------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> None:
        self.engine.create_table(schema)

    def bulk_load(self, table: str, rows) -> int:
        return self.engine.bulk_load(table, rows)

    # -- transactions -----------------------------------------------------------------
    def begin(self, read_only: bool = False, write_tables=()) -> Transaction:
        mode = TxnMode.READ_ONLY if read_only else TxnMode.UPDATE
        txn = self.engine.begin(mode, write_intent=write_tables)
        if not read_only:
            self._txn_queries[txn.txn_id] = []
        return txn

    def execute(self, txn: Transaction, sql: str, params: Sequence = ()) -> ResultSet:
        result = self.sql.execute(txn, sql, params)
        if not txn.read_only and not sql.lstrip().lower().startswith("select"):
            self._txn_queries[txn.txn_id].append((sql, tuple(params)))
        return result

    def commit(self, txn: Transaction) -> Dict[str, int]:
        """Commit with WAL append + fsync (the log force the paper pays)."""
        queries = self._txn_queries.pop(txn.txn_id, [])
        ops = list(txn.redo)
        versions = self.engine.commit(txn)
        if ops:
            self.wal.append_commit(txn.txn_id, ops, queries)
            self.wal.fsync()
        return versions

    def abort(self, txn: Transaction, reason: str = "abort") -> None:
        self._txn_queries.pop(txn.txn_id, None)
        self.engine.abort(txn, reason=reason)

    # -- replication / recovery ----------------------------------------------------------
    def apply_logged_update(self, entry: LoggedUpdate) -> None:
        """Replay one committed transaction from a query log.

        On any failure the replay transaction is rolled back before the
        error propagates, so a retry later starts clean.
        """
        txn = self.begin()
        try:
            for sql, params in entry.queries:
                self.execute(txn, sql, params)
        except BaseException:
            self.abort(txn, reason="replay-failure")
            raise
        self.commit(txn)
        self.counters.add("disk.log_replays")

    def replay_batch(self, entries: Sequence[LoggedUpdate]) -> int:
        for entry in entries:
            self.apply_logged_update(entry)
        return len(entries)

    def current_versions(self) -> VersionVector:
        return self.engine.versions.copy()

    # -- cost accounting helpers -------------------------------------------------------------
    def snapshot_counters(self) -> Dict[str, float]:
        return self.counters.snapshot()

    def io_cost_since(self, snapshot: Dict[str, float]) -> float:
        """Disk seconds implied by counter movement since ``snapshot``.

        Buffer-pool misses are random page reads; fsyncs are log forces;
        WAL bytes stream sequentially (folded into the fsync cost here).
        """
        delta = self.counters.delta_since(snapshot)
        cost = self.disk.random_read_cost(int(delta.get("cache.misses", 0)))
        cost += self.disk.fsync_cost(int(delta.get("wal.fsyncs", 0)))
        return cost
