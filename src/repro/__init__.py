"""repro — Dynamic Multiversioning (DSN 2007) reproduction.

A from-scratch implementation of Manassiev & Amza's in-memory multiversion
replication tier: page-granular replicated storage, a version-aware
scheduler, split-second failure reconfiguration, an on-disk persistence
tier, and the TPC-W workload — plus a discrete-event cluster simulation
that regenerates every figure of the paper's evaluation.

Typical entry points:

* :class:`repro.cluster.SyncDmvCluster` — embedded synchronous cluster,
* :class:`repro.cluster.ThreadedDmvCluster` — live cluster for threaded apps,
* :class:`repro.cluster.simcluster.SimDmvCluster` — simulated deployment,
* :mod:`repro.tpcw` — the benchmark workload,
* :mod:`repro.bench` — the paper's experiments.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.common.errors import (
    ConfigError,
    DeadlockDetected,
    NodeUnavailable,
    ReproError,
    SchemaError,
    SqlError,
    TransactionAborted,
    VersionInconsistency,
)
from repro.common.versions import VersionVector
from repro.engine.schema import Column, IndexDef, TableSchema

__version__ = "1.0.0"

#: The paper this library reproduces.
PAPER = (
    "Kaloian Manassiev and Cristiana Amza. "
    "Scaling and Continuous Availability in Database Server Clusters "
    "through Multiversion Replication. DSN 2007."
)

__all__ = [
    "__version__",
    "PAPER",
    "ReproError",
    "ConfigError",
    "SchemaError",
    "SqlError",
    "TransactionAborted",
    "VersionInconsistency",
    "DeadlockDetected",
    "NodeUnavailable",
    "VersionVector",
    "Column",
    "IndexDef",
    "TableSchema",
]
