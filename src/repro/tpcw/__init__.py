"""TPC-W: the industry-standard e-commerce benchmark the paper evaluates.

An online bookstore: schema, a scalable deterministic data generator, the
fourteen web interactions (as SQL-issuing generator functions independent
of any transport), the three workload mixes, and the emulated-browser
session logic.

Note on tables: the paper's text lists eight tables, but its update
fractions (5 % / 20 % / 50 %) match the standard TPC-W classification in
which shopping-cart interactions write to the database, so we include the
two standard cart tables (``shopping_cart``, ``shopping_cart_line``) as
well — see DESIGN.md.
"""

from repro.tpcw.schema import TPCW_SCHEMAS, TpcwScale, UPDATE_TEMPLATES, tpcw_conflict_map
from repro.tpcw.datagen import TpcwDataGenerator
from repro.tpcw.mixes import MIXES, Mix, UPDATE_INTERACTIONS
from repro.tpcw.connection import Connection, Immediate, run_sync
from repro.tpcw.interactions import INTERACTIONS, InteractionContext
from repro.tpcw.session import EmulatedBrowser

__all__ = [
    "TPCW_SCHEMAS",
    "TpcwScale",
    "UPDATE_TEMPLATES",
    "tpcw_conflict_map",
    "TpcwDataGenerator",
    "MIXES",
    "Mix",
    "UPDATE_INTERACTIONS",
    "Connection",
    "Immediate",
    "run_sync",
    "INTERACTIONS",
    "InteractionContext",
    "EmulatedBrowser",
]
