"""TPC-W schema: the bookstore tables, indexes and conflict classes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.core.conflictclass import ConflictClassMap
from repro.engine.schema import Column, IndexDef, TableSchema


@dataclass(frozen=True)
class TpcwScale:
    """Database scale knobs (the standard is 100K items / 288K customers).

    All derived cardinalities follow the TPC-W ratios: 2.88 customers per
    item, 0.9 orders per customer, ~3 order lines per order, one author per
    four items, 92 countries.
    """

    num_items: int = 1000
    num_customers: int = 2880

    @property
    def num_authors(self) -> int:
        return max(1, self.num_items // 4)

    @property
    def num_orders(self) -> int:
        return max(1, int(self.num_customers * 0.9))

    @property
    def num_addresses(self) -> int:
        return self.num_customers * 2

    @property
    def num_countries(self) -> int:
        return 92

    @property
    def bestseller_depth(self) -> int:
        """How many recent orders BestSellers aggregates over.

        The TPC-W standard uses the most recent 3333 orders; scaled-down
        databases use the same 1/27 fraction of the initial order count so
        the query's relative weight is preserved.
        """
        return min(3333, max(20, self.num_orders // 27))

    @classmethod
    def paper_standard(cls) -> "TpcwScale":
        """The paper's §5.1 configuration (100K items, 288K customers)."""
        return cls(num_items=100_000, num_customers=288_000)

    @classmethod
    def paper_large(cls) -> "TpcwScale":
        """The paper's §6.3 larger configuration (400K customers)."""
        return cls(num_items=100_000, num_customers=400_000)


#: The 23 standard book subjects.
SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH",
]

TPCW_SCHEMAS: List[TableSchema] = [
    TableSchema(
        "customer",
        [
            Column("c_id", "int", nullable=False),
            Column("c_uname", "str", nullable=False),
            Column("c_passwd", "str"),
            Column("c_fname", "str"),
            Column("c_lname", "str"),
            Column("c_addr_id", "int"),
            Column("c_phone", "str"),
            Column("c_email", "str"),
            Column("c_since", "float"),
            Column("c_last_login", "float"),
            Column("c_login", "float"),
            Column("c_expiration", "float"),
            Column("c_discount", "float"),
            Column("c_balance", "float"),
            Column("c_ytd_pmt", "float"),
            Column("c_birthdate", "float"),
            Column("c_data", "str"),
        ],
        primary_key=("c_id",),
        indexes=[IndexDef("ix_customer_uname", ("c_uname",))],
    ),
    TableSchema(
        "address",
        [
            Column("addr_id", "int", nullable=False),
            Column("addr_street1", "str"),
            Column("addr_street2", "str"),
            Column("addr_city", "str"),
            Column("addr_state", "str"),
            Column("addr_zip", "str"),
            Column("addr_co_id", "int"),
        ],
        primary_key=("addr_id",),
        indexes=[IndexDef("ix_address_street1", ("addr_street1",))],
    ),
    TableSchema(
        "country",
        [
            Column("co_id", "int", nullable=False),
            Column("co_name", "str"),
            Column("co_exchange", "float"),
            Column("co_currency", "str"),
        ],
        primary_key=("co_id",),
        indexes=[IndexDef("ix_country_name", ("co_name",))],
    ),
    TableSchema(
        "orders",
        [
            Column("o_id", "int", nullable=False),
            Column("o_c_id", "int", nullable=False),
            Column("o_date", "float"),
            Column("o_sub_total", "float"),
            Column("o_tax", "float"),
            Column("o_total", "float"),
            Column("o_ship_type", "str"),
            Column("o_ship_date", "float"),
            Column("o_bill_addr_id", "int"),
            Column("o_ship_addr_id", "int"),
            Column("o_status", "str"),
        ],
        primary_key=("o_id",),
        indexes=[
            IndexDef("ix_orders_cust", ("o_c_id", "o_date")),
            IndexDef("ix_orders_id", ("o_id",)),
        ],
    ),
    TableSchema(
        "order_line",
        [
            Column("ol_id", "int", nullable=False),
            Column("ol_o_id", "int", nullable=False),
            Column("ol_i_id", "int", nullable=False),
            Column("ol_qty", "int"),
            Column("ol_discount", "float"),
            Column("ol_comments", "str"),
        ],
        primary_key=("ol_o_id", "ol_id"),
        indexes=[
            IndexDef("ix_ol_order", ("ol_o_id",)),
            IndexDef("ix_ol_item", ("ol_i_id",)),
        ],
    ),
    TableSchema(
        "cc_xacts",
        [
            Column("cx_o_id", "int", nullable=False),
            Column("cx_type", "str"),
            Column("cx_num", "str"),
            Column("cx_name", "str"),
            Column("cx_expiry", "float"),
            Column("cx_auth_id", "str"),
            Column("cx_xact_amt", "float"),
            Column("cx_xact_date", "float"),
            Column("cx_co_id", "int"),
        ],
        primary_key=("cx_o_id",),
    ),
    TableSchema(
        "item",
        [
            Column("i_id", "int", nullable=False),
            Column("i_title", "str"),
            Column("i_a_id", "int"),
            Column("i_pub_date", "float"),
            Column("i_publisher", "str"),
            Column("i_subject", "str"),
            Column("i_desc", "str"),
            Column("i_related1", "int"),
            Column("i_related2", "int"),
            Column("i_related3", "int"),
            Column("i_related4", "int"),
            Column("i_related5", "int"),
            Column("i_thumbnail", "str"),
            Column("i_image", "str"),
            Column("i_srp", "float"),
            Column("i_cost", "float"),
            Column("i_avail", "float"),
            Column("i_stock", "int"),
            Column("i_isbn", "str"),
            Column("i_page", "int"),
            Column("i_backing", "str"),
            Column("i_dimensions", "str"),
        ],
        primary_key=("i_id",),
        indexes=[
            IndexDef("ix_item_subject_date", ("i_subject", "i_pub_date")),
            IndexDef("ix_item_title", ("i_title",)),
            IndexDef("ix_item_author", ("i_a_id",)),
        ],
    ),
    TableSchema(
        "author",
        [
            Column("a_id", "int", nullable=False),
            Column("a_fname", "str"),
            Column("a_lname", "str"),
            Column("a_mname", "str"),
            Column("a_dob", "float"),
            Column("a_bio", "str"),
        ],
        primary_key=("a_id",),
        indexes=[IndexDef("ix_author_lname", ("a_lname",))],
    ),
    TableSchema(
        "shopping_cart",
        [
            Column("sc_id", "int", nullable=False),
            Column("sc_time", "float"),
            Column("sc_total", "float"),
        ],
        primary_key=("sc_id",),
    ),
    TableSchema(
        "shopping_cart_line",
        [
            Column("scl_sc_id", "int", nullable=False),
            Column("scl_i_id", "int", nullable=False),
            Column("scl_qty", "int"),
        ],
        primary_key=("scl_sc_id", "scl_i_id"),
        indexes=[IndexDef("ix_scl_cart", ("scl_sc_id",))],
    ),
]

TABLE_NAMES = [schema.name for schema in TPCW_SCHEMAS]

#: Write-sets of the update transaction templates (for conflict classes).
UPDATE_TEMPLATES: List[Set[str]] = [
    {"shopping_cart", "shopping_cart_line"},          # ShoppingCart
    {"customer", "address"},                          # CustomerRegistration
    {"shopping_cart"},                                # BuyRequest
    {"orders", "order_line", "cc_xacts", "item",
     "shopping_cart", "shopping_cart_line"},          # BuyConfirm
    {"item"},                                         # AdminConfirm
]


def tpcw_conflict_map(multi_master: bool = False) -> ConflictClassMap:
    """The TPC-W conflict classes.

    With ``multi_master`` the two disjoint write classes (ordering tables
    vs. customer registration) can go to different masters; otherwise the
    single-master fallback is used.
    """
    if multi_master:
        return ConflictClassMap(TABLE_NAMES, UPDATE_TEMPLATES)
    return ConflictClassMap.single_class(TABLE_NAMES)


def schema_by_name() -> Dict[str, TableSchema]:
    return {schema.name: schema for schema in TPCW_SCHEMAS}
