"""Deterministic TPC-W data generation.

Populates any target exposing ``create_table(schema)`` and
``bulk_load(table, rows)`` — heap engines, disk databases, cluster nodes.
Generation is seeded, so every replica loads byte-identical data (the
paper's replicas all mmap the same initial on-disk database image).
"""

from __future__ import annotations

import string
from typing import Dict, Iterator, List

from repro.common.rng import RngStream
from repro.tpcw.schema import SUBJECTS, TPCW_SCHEMAS, TpcwScale

_EPOCH_2000 = 946_684_800.0
_DAY = 86_400.0


class TpcwDataGenerator:
    """Generates the initial bookstore population at a given scale."""

    def __init__(self, scale: TpcwScale, seed: int = 42) -> None:
        self.scale = scale
        self.seed = seed

    # -- public API -------------------------------------------------------------
    def populate(self, target) -> Dict[str, int]:
        """Create all tables on ``target`` and load them; returns row counts."""
        for schema in TPCW_SCHEMAS:
            target.create_table(schema)
        return self.load(target)

    def load(self, target) -> Dict[str, int]:
        """Load all tables on ``target`` (tables must already exist)."""
        counts = {}
        counts["country"] = target.bulk_load("country", self.countries())
        counts["author"] = target.bulk_load("author", self.authors())
        counts["address"] = target.bulk_load("address", self.addresses())
        counts["customer"] = target.bulk_load("customer", self.customers())
        counts["item"] = target.bulk_load("item", self.items())
        counts["orders"] = target.bulk_load("orders", self.orders())
        counts["order_line"] = target.bulk_load("order_line", self.order_lines())
        counts["cc_xacts"] = target.bulk_load("cc_xacts", self.cc_xacts())
        counts["shopping_cart"] = target.bulk_load("shopping_cart", [])
        counts["shopping_cart_line"] = target.bulk_load("shopping_cart_line", [])
        return counts

    # -- helpers ------------------------------------------------------------------
    def _rng(self, table: str) -> RngStream:
        return RngStream(self.seed, "tpcw", table)

    @staticmethod
    def _string(rng: RngStream, lo: int, hi: int) -> str:
        length = rng.randint(lo, hi)
        return "".join(rng.choice(string.ascii_uppercase) for _ in range(length))

    @staticmethod
    def uname_of(c_id: int) -> str:
        """The deterministic TPC-W username for a customer id."""
        return f"USER{c_id:08d}"

    # -- per-table generators ---------------------------------------------------------
    def countries(self) -> Iterator[dict]:
        rng = self._rng("country")
        for co_id in range(1, self.scale.num_countries + 1):
            yield {
                "co_id": co_id,
                "co_name": f"COUNTRY{co_id:03d}",
                "co_exchange": round(rng.uniform(0.1, 10.0), 4),
                "co_currency": self._string(rng, 3, 3),
            }

    def authors(self) -> Iterator[dict]:
        rng = self._rng("author")
        for a_id in range(1, self.scale.num_authors + 1):
            yield {
                "a_id": a_id,
                "a_fname": self._string(rng, 3, 12),
                "a_lname": f"LNAME{a_id % max(1, self.scale.num_authors // 4):05d}",
                "a_mname": self._string(rng, 1, 1),
                "a_dob": _EPOCH_2000 - rng.randint(20 * 365, 80 * 365) * _DAY,
                "a_bio": self._string(rng, 20, 60),
            }

    def addresses(self) -> Iterator[dict]:
        rng = self._rng("address")
        for addr_id in range(1, self.scale.num_addresses + 1):
            yield {
                "addr_id": addr_id,
                "addr_street1": self._string(rng, 10, 30),
                "addr_street2": self._string(rng, 10, 30),
                "addr_city": self._string(rng, 4, 20),
                "addr_state": self._string(rng, 2, 2),
                "addr_zip": f"{rng.randint(10000, 99999)}",
                "addr_co_id": rng.randint(1, self.scale.num_countries),
            }

    def customers(self) -> Iterator[dict]:
        rng = self._rng("customer")
        now = _EPOCH_2000
        for c_id in range(1, self.scale.num_customers + 1):
            since = now - rng.randint(1, 730) * _DAY
            yield {
                "c_id": c_id,
                "c_uname": self.uname_of(c_id),
                "c_passwd": self.uname_of(c_id).lower(),
                "c_fname": self._string(rng, 4, 12),
                "c_lname": self._string(rng, 4, 12),
                "c_addr_id": rng.randint(1, self.scale.num_addresses),
                "c_phone": f"{rng.randint(10**9, 10**10 - 1)}",
                "c_email": f"user{c_id}@example.com",
                "c_since": since,
                "c_last_login": since + rng.randint(0, 60) * _DAY,
                "c_login": now,
                "c_expiration": now + 2 * 3600,
                "c_discount": rng.randint(0, 50) / 100.0,
                "c_balance": 0.0,
                "c_ytd_pmt": round(rng.uniform(0.0, 100000.0), 2),
                "c_birthdate": _EPOCH_2000 - rng.randint(18 * 365, 90 * 365) * _DAY,
                "c_data": self._string(rng, 40, 100),
            }

    def items(self) -> Iterator[dict]:
        rng = self._rng("item")
        n = self.scale.num_items
        for i_id in range(1, n + 1):
            srp = round(rng.uniform(1.0, 300.0), 2)
            related = [((i_id + k * 7) % n) + 1 for k in range(1, 6)]
            yield {
                "i_id": i_id,
                "i_title": f"BOOK{i_id:08d} {self._string(rng, 4, 14)}",
                "i_a_id": ((i_id - 1) % self.scale.num_authors) + 1,
                "i_pub_date": _EPOCH_2000 - rng.randint(1, 4000) * _DAY,
                "i_publisher": self._string(rng, 8, 16),
                "i_subject": SUBJECTS[rng.randint(0, len(SUBJECTS) - 1)],
                "i_desc": self._string(rng, 30, 80),
                "i_related1": related[0],
                "i_related2": related[1],
                "i_related3": related[2],
                "i_related4": related[3],
                "i_related5": related[4],
                "i_thumbnail": f"img/thumb/{i_id}.gif",
                "i_image": f"img/full/{i_id}.gif",
                "i_srp": srp,
                "i_cost": round(srp * rng.uniform(0.5, 1.0), 2),
                "i_avail": _EPOCH_2000 + rng.randint(1, 30) * _DAY,
                "i_stock": rng.randint(10, 30),
                "i_isbn": self._string(rng, 13, 13),
                "i_page": rng.randint(20, 9999),
                "i_backing": rng.choice(["HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED"]),
                "i_dimensions": f"{rng.randint(1, 99)}x{rng.randint(1, 99)}x{rng.randint(1, 99)}",
            }

    def orders(self) -> Iterator[dict]:
        rng = self._rng("orders")
        now = _EPOCH_2000
        for o_id in range(1, self.scale.num_orders + 1):
            date = now - rng.randint(0, 60) * _DAY
            subtotal = round(rng.uniform(10.0, 1000.0), 2)
            yield {
                "o_id": o_id,
                "o_c_id": rng.randint(1, self.scale.num_customers),
                "o_date": date,
                "o_sub_total": subtotal,
                "o_tax": round(subtotal * 0.0825, 2),
                "o_total": round(subtotal * 1.0825, 2),
                "o_ship_type": rng.choice(["AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"]),
                "o_ship_date": date + rng.randint(0, 7) * _DAY,
                "o_bill_addr_id": rng.randint(1, self.scale.num_addresses),
                "o_ship_addr_id": rng.randint(1, self.scale.num_addresses),
                "o_status": rng.choice(["PROCESSING", "SHIPPED", "PENDING", "DENIED"]),
            }

    def order_lines(self) -> Iterator[dict]:
        rng = self._rng("order_line")
        for o_id in range(1, self.scale.num_orders + 1):
            for ol_id in range(1, rng.randint(1, 5) + 1):
                yield {
                    "ol_id": ol_id,
                    "ol_o_id": o_id,
                    "ol_i_id": rng.zipf_index(self.scale.num_items, skew=0.6) + 1,
                    "ol_qty": rng.randint(1, 300),
                    "ol_discount": rng.randint(0, 30) / 100.0,
                    "ol_comments": self._string(rng, 20, 60),
                }

    def cc_xacts(self) -> Iterator[dict]:
        rng = self._rng("cc_xacts")
        now = _EPOCH_2000
        for o_id in range(1, self.scale.num_orders + 1):
            yield {
                "cx_o_id": o_id,
                "cx_type": rng.choice(["VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"]),
                "cx_num": f"{rng.randint(10**15, 10**16 - 1)}",
                "cx_name": self._string(rng, 8, 24),
                "cx_expiry": now + rng.randint(10, 730) * _DAY,
                "cx_auth_id": self._string(rng, 15, 15),
                "cx_xact_amt": round(rng.uniform(10.0, 1100.0), 2),
                "cx_xact_date": now - rng.randint(0, 60) * _DAY,
                "cx_co_id": rng.randint(1, self.scale.num_countries),
            }
