"""The three TPC-W workload mixes.

Interaction frequencies follow the official TPC-W mix tables (stationary
distributions of the browse/shop/order Markov chains).  The paper
characterises them by their update-transaction fractions: browsing ~5 %,
shopping ~20 %, ordering ~50 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.rng import RngStream

#: Interactions classified as update transactions (they write the DB).
UPDATE_INTERACTIONS = frozenset(
    ["shopping_cart", "customer_registration", "buy_request", "buy_confirm", "admin_confirm"]
)

_BROWSING: List[Tuple[str, float]] = [
    ("home", 29.00),
    ("new_products", 11.00),
    ("best_sellers", 11.00),
    ("product_detail", 21.00),
    ("search_request", 12.00),
    ("search_results", 11.00),
    ("shopping_cart", 2.00),
    ("customer_registration", 0.82),
    ("buy_request", 0.75),
    ("buy_confirm", 0.69),
    ("order_inquiry", 0.30),
    ("order_display", 0.25),
    ("admin_request", 0.10),
    ("admin_confirm", 0.09),
]

_SHOPPING: List[Tuple[str, float]] = [
    ("home", 16.00),
    ("new_products", 5.00),
    ("best_sellers", 5.00),
    ("product_detail", 17.00),
    ("search_request", 20.00),
    ("search_results", 17.00),
    ("shopping_cart", 11.60),
    ("customer_registration", 3.00),
    ("buy_request", 2.60),
    ("buy_confirm", 1.20),
    ("order_inquiry", 0.75),
    ("order_display", 0.66),
    ("admin_request", 0.21),
    ("admin_confirm", 0.10),
]

_ORDERING: List[Tuple[str, float]] = [
    ("home", 9.12),
    ("new_products", 0.46),
    ("best_sellers", 0.46),
    ("product_detail", 12.35),
    ("search_request", 14.53),
    ("search_results", 13.08),
    ("shopping_cart", 13.53),
    ("customer_registration", 12.86),
    ("buy_request", 12.73),
    ("buy_confirm", 10.18),
    ("order_inquiry", 0.25),
    ("order_display", 0.22),
    ("admin_request", 0.12),
    ("admin_confirm", 0.11),
]


@dataclass(frozen=True)
class Mix:
    """A named distribution over the fourteen interactions."""

    name: str
    weights: Tuple[Tuple[str, float], ...]

    def pick(self, rng: RngStream) -> str:
        names = [n for n, _w in self.weights]
        probs = [w for _n, w in self.weights]
        return rng.weighted_choice(names, probs)

    def update_fraction(self) -> float:
        total = sum(w for _n, w in self.weights)
        updates = sum(w for n, w in self.weights if n in UPDATE_INTERACTIONS)
        return updates / total

    def weight_of(self, interaction: str) -> float:
        for name, weight in self.weights:
            if name == interaction:
                return weight
        return 0.0


MIXES: Dict[str, Mix] = {
    "browsing": Mix("browsing", tuple(_BROWSING)),
    "shopping": Mix("shopping", tuple(_SHOPPING)),
    "ordering": Mix("ordering", tuple(_ORDERING)),
}
