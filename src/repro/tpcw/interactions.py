"""The fourteen TPC-W web interactions, written against the effect protocol.

Each interaction is a generator function ``fn(conn, ctx)`` that yields
connection effects (see :mod:`repro.tpcw.connection`) and returns a small
summary dict.  The SQL follows the standard TPC-W implementations (the
complex read-only interactions — BestSellers, NewProducts, SearchResults —
contain the joins the paper calls out).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.rng import RngStream
from repro.tpcw.datagen import TpcwDataGenerator
from repro.tpcw.schema import SUBJECTS, TpcwScale


class SharedSequences:
    """App-server-side id sequences (orders, customers, addresses, carts).

    Shared by every emulated browser of one experiment, so generated ids
    never collide — TPC-W front-ends draw these from a sequence service.
    """

    def __init__(self, scale: TpcwScale) -> None:
        self._order_ids = itertools.count(scale.num_orders + 1)
        self._customer_ids = itertools.count(scale.num_customers + 1)
        self._address_ids = itertools.count(scale.num_addresses + 1)
        self._cart_ids = itertools.count(1)

    def next_order_id(self) -> int:
        return next(self._order_ids)

    def next_customer_id(self) -> int:
        return next(self._customer_ids)

    def next_address_id(self) -> int:
        return next(self._address_ids)

    def next_cart_id(self) -> int:
        return next(self._cart_ids)


@dataclass
class InteractionContext:
    """Per-browser session state passed to every interaction."""

    rng: RngStream
    scale: TpcwScale
    sequences: SharedSequences
    now: Callable[[], float] = lambda: 0.0
    customer_id: int = 1
    cart_id: Optional[int] = None
    cart_created: bool = False
    #: The session's view of its cart {item_id: qty}; may lag the database
    #: after retried commits, which the upsert write pattern tolerates.
    cart_contents: Dict[int, int] = field(default_factory=dict)
    last_order_id: Optional[int] = None

    def random_item(self) -> int:
        """Zipf-skewed item pick: the hot working set the paper relies on."""
        return self.rng.zipf_index(self.scale.num_items, skew=0.8) + 1

    def random_subject(self) -> str:
        return self.rng.choice(SUBJECTS)

    def ensure_cart_id(self) -> int:
        if self.cart_id is None:
            self.cart_id = self.sequences.next_cart_id()
        return self.cart_id


# -- SQL text (module-level constants so plan caches hit) --------------------------
GET_NAME = "SELECT c_fname, c_lname FROM customer WHERE c_id = ?"
GET_CUSTOMER = (
    "SELECT * FROM customer, address, country "
    "WHERE customer.c_addr_id = address.addr_id "
    "AND address.addr_co_id = country.co_id AND customer.c_uname = ?"
)
GET_BOOK = (
    "SELECT * FROM item, author WHERE item.i_a_id = author.a_id AND item.i_id = ?"
)
GET_RELATED = (
    "SELECT i_related1, i_related2, i_related3, i_related4, i_related5 "
    "FROM item WHERE i_id = ?"
)
NEW_PRODUCTS = (
    "SELECT item.i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND item.i_subject = ? "
    "ORDER BY item.i_pub_date DESC, item.i_title LIMIT 50"
)
MAX_ORDER_ID = "SELECT MAX(o_id) FROM orders"
BEST_SELLERS = (
    "SELECT item.i_id, i_title, a_fname, a_lname, SUM(ol_qty) AS val "
    "FROM item, author, order_line "
    "WHERE item.i_id = order_line.ol_i_id AND item.i_a_id = author.a_id "
    "AND order_line.ol_o_id > ? AND item.i_subject = ? "
    "GROUP BY item.i_id, i_title, a_fname, a_lname "
    "ORDER BY val DESC LIMIT 50"
)
SEARCH_BY_AUTHOR = (
    "SELECT item.i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND author.a_lname LIKE ? "
    "ORDER BY i_title LIMIT 50"
)
SEARCH_BY_TITLE = (
    "SELECT item.i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND item.i_title LIKE ? "
    "ORDER BY i_title LIMIT 50"
)
SEARCH_BY_SUBJECT = (
    "SELECT item.i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND item.i_subject = ? "
    "ORDER BY i_title LIMIT 50"
)
GET_CART = "SELECT sc_id FROM shopping_cart WHERE sc_id = ?"
CREATE_CART = "INSERT INTO shopping_cart (sc_id, sc_time, sc_total) VALUES (?, ?, 0.0)"
GET_CART_LINE = (
    "SELECT scl_qty FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?"
)
ADD_CART_LINE = (
    "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)"
)
UPDATE_CART_LINE = (
    "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_sc_id = ? AND scl_i_id = ?"
)
REFRESH_CART = "UPDATE shopping_cart SET sc_time = ?, sc_total = sc_total + ? WHERE sc_id = ?"
GET_CART_LINES = (
    "SELECT scl_i_id, scl_qty, i_cost, i_title FROM shopping_cart_line, item "
    "WHERE scl_i_id = item.i_id AND scl_sc_id = ?"
)
INSERT_CUSTOMER = (
    "INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_addr_id, "
    "c_phone, c_email, c_since, c_last_login, c_login, c_expiration, c_discount, "
    "c_balance, c_ytd_pmt, c_birthdate, c_data) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0.0, 0.0, ?, ?)"
)
INSERT_ADDRESS = (
    "INSERT INTO address (addr_id, addr_street1, addr_street2, addr_city, "
    "addr_state, addr_zip, addr_co_id) VALUES (?, ?, ?, ?, ?, ?, ?)"
)
GET_COUNTRY_BY_NAME = "SELECT co_id FROM country WHERE co_name = ?"
GET_ADDRESS = "SELECT addr_street1, addr_city, addr_co_id FROM address WHERE addr_id = ?"
INSERT_ORDER = (
    "INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, "
    "o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 'PENDING')"
)
INSERT_ORDER_LINE = (
    "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount, ol_comments) "
    "VALUES (?, ?, ?, ?, ?, '')"
)
UPDATE_STOCK = "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?"
RESTOCK = "UPDATE item SET i_stock = i_stock - ? + 21 WHERE i_id = ?"
INSERT_CC_XACT = (
    "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expiry, "
    "cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
)
CLEAR_CART_LINES = "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?"
GET_PASSWORD = "SELECT c_passwd FROM customer WHERE c_uname = ?"
MOST_RECENT_ORDER = (
    "SELECT o_id, o_date, o_total, o_status FROM orders "
    "WHERE o_c_id = ? ORDER BY o_date DESC, o_id DESC LIMIT 1"
)
ORDER_LINES_OF = (
    "SELECT ol_i_id, i_title, ol_qty, ol_discount FROM order_line, item "
    "WHERE ol_i_id = item.i_id AND ol_o_id = ?"
)
ADMIN_UPDATE_ITEM = (
    "UPDATE item SET i_cost = ?, i_image = ?, i_thumbnail = ?, i_pub_date = ? "
    "WHERE i_id = ?"
)
ADMIN_RELATED_CUSTOMERS = (
    "SELECT DISTINCT o_c_id FROM orders, order_line "
    "WHERE orders.o_id = order_line.ol_o_id AND order_line.ol_i_id = ? LIMIT 20"
)
ADMIN_UPDATE_RELATED = (
    "UPDATE item SET i_related1 = ?, i_related2 = ?, i_related3 = ?, "
    "i_related4 = ?, i_related5 = ? WHERE i_id = ?"
)

READ_TABLES = ["customer", "address", "country", "orders", "order_line",
               "cc_xacts", "item", "author", "shopping_cart", "shopping_cart_line"]


# -- read-only interactions ------------------------------------------------------------
def home(conn, ctx: InteractionContext):
    """Home page: greet the customer, show promotional (related) items."""
    yield conn.begin_read(["customer", "item"])
    name = yield conn.query(GET_NAME, (ctx.customer_id,))
    related = yield conn.query(GET_RELATED, (ctx.random_item(),))
    yield conn.commit()
    return {"interaction": "home", "rows": len(name) + len(related)}


def new_products(conn, ctx: InteractionContext):
    yield conn.begin_read(["item", "author"])
    result = yield conn.query(NEW_PRODUCTS, (ctx.random_subject(),))
    yield conn.commit()
    return {"interaction": "new_products", "rows": len(result)}


def best_sellers(conn, ctx: InteractionContext):
    yield conn.begin_read(["item", "author", "orders", "order_line"])
    newest = yield conn.query(MAX_ORDER_ID)
    threshold = max(0, (newest.scalar() or 0) - ctx.scale.bestseller_depth)
    result = yield conn.query(BEST_SELLERS, (threshold, ctx.random_subject()))
    yield conn.commit()
    return {"interaction": "best_sellers", "rows": len(result)}


def product_detail(conn, ctx: InteractionContext):
    yield conn.begin_read(["item", "author"])
    result = yield conn.query(GET_BOOK, (ctx.random_item(),))
    yield conn.commit()
    return {"interaction": "product_detail", "rows": len(result)}


def search_request(conn, ctx: InteractionContext):
    """The search form page: light — promotional items only."""
    yield conn.begin_read(["item"])
    result = yield conn.query(GET_RELATED, (ctx.random_item(),))
    yield conn.commit()
    return {"interaction": "search_request", "rows": len(result)}


def search_results(conn, ctx: InteractionContext):
    yield conn.begin_read(["item", "author"])
    kind = ctx.rng.choice(["author", "title", "subject"])
    if kind == "author":
        pattern = f"LNAME{ctx.rng.randint(0, max(0, ctx.scale.num_authors // 4 - 1)):05d}%"
        result = yield conn.query(SEARCH_BY_AUTHOR, (pattern,))
    elif kind == "title":
        result = yield conn.query(SEARCH_BY_TITLE, (f"BOOK{ctx.rng.randint(0, 9)}%",))
    else:
        result = yield conn.query(SEARCH_BY_SUBJECT, (ctx.random_subject(),))
    yield conn.commit()
    return {"interaction": "search_results", "kind": kind, "rows": len(result)}


def order_inquiry(conn, ctx: InteractionContext):
    yield conn.begin_read(["customer"])
    result = yield conn.query(GET_PASSWORD, (TpcwDataGenerator.uname_of(ctx.customer_id),))
    yield conn.commit()
    return {"interaction": "order_inquiry", "rows": len(result)}


def order_display(conn, ctx: InteractionContext):
    yield conn.begin_read(["customer", "orders", "order_line", "item"])
    order = yield conn.query(MOST_RECENT_ORDER, (ctx.customer_id,))
    lines = []
    if order.rows:
        lines = yield conn.query(ORDER_LINES_OF, (order.rows[0][0],))
    yield conn.commit()
    return {"interaction": "order_display", "rows": len(order) + len(lines)}


def admin_request(conn, ctx: InteractionContext):
    yield conn.begin_read(["item", "author"])
    result = yield conn.query(GET_BOOK, (ctx.random_item(),))
    yield conn.commit()
    return {"interaction": "admin_request", "rows": len(result)}


# -- update interactions ------------------------------------------------------------------
def shopping_cart(conn, ctx: InteractionContext):
    """Add one or more items to the session's cart (creates it on demand).

    Uses the upsert pattern (UPDATE, INSERT on zero rows) so the write lock
    is taken up front — no S->X upgrade window — and the statement stays
    correct even if the session's view of the cart is stale after a retried
    commit.
    """
    cart_id = ctx.ensure_cart_id()
    yield conn.begin_update(["shopping_cart", "shopping_cart_line"])
    if not ctx.cart_created:
        existing = yield conn.query(GET_CART, (cart_id,))
        if not existing.rows:
            yield conn.query(CREATE_CART, (cart_id, ctx.now()))
        # ctx.cart_created is only set after the commit succeeds — a retry
        # of an aborted attempt must re-create the cart row.
    staged = dict(ctx.cart_contents)
    added = 0
    for _ in range(ctx.rng.randint(1, 3)):
        item_id = ctx.random_item()
        updated = yield conn.query(
            UPDATE_CART_LINE, (staged.get(item_id, 0) + 1, cart_id, item_id)
        )
        if updated.rowcount == 0:
            yield conn.query(ADD_CART_LINE, (cart_id, item_id, 1))
        staged[item_id] = staged.get(item_id, 0) + 1
        added += 1
    yield conn.query(REFRESH_CART, (ctx.now(), float(added), cart_id))
    yield conn.commit()
    ctx.cart_created = True
    ctx.cart_contents = staged
    return {"interaction": "shopping_cart", "added": added}


def customer_registration(conn, ctx: InteractionContext):
    """Register a new customer (insert address + customer)."""
    c_id = ctx.sequences.next_customer_id()
    addr_id = ctx.sequences.next_address_id()
    yield conn.begin_update(["customer", "address"])
    country = yield conn.query(
        GET_COUNTRY_BY_NAME, (f"COUNTRY{ctx.rng.randint(1, 92):03d}",)
    )
    co_id = country.scalar() or 1
    yield conn.query(
        INSERT_ADDRESS,
        (addr_id, f"ST{c_id}", "APT 1", "CITY", "ST", f"{10000 + c_id % 90000}", co_id),
    )
    now = ctx.now()
    uname = TpcwDataGenerator.uname_of(c_id)
    yield conn.query(
        INSERT_CUSTOMER,
        (
            c_id, uname, uname.lower(), f"F{c_id}", f"L{c_id}", addr_id,
            "5551234567", f"user{c_id}@example.com", now, now, now,
            now + 7200.0, 0.1, now - 30 * 365 * 86400.0, "generated customer",
        ),
    )
    yield conn.commit()
    ctx.customer_id = c_id
    return {"interaction": "customer_registration", "customer": c_id}


def buy_request(conn, ctx: InteractionContext):
    """Checkout page: show the cart, refresh totals."""
    cart_id = ctx.ensure_cart_id()
    yield conn.begin_update(["shopping_cart", "shopping_cart_line"])
    if not ctx.cart_created:
        existing = yield conn.query(GET_CART, (cart_id,))
        if not existing.rows:
            yield conn.query(CREATE_CART, (cart_id, ctx.now()))
        # ctx.cart_created is only set after the commit succeeds — a retry
        # of an aborted attempt must re-create the cart row.
    lines = yield conn.query(GET_CART_LINES, (cart_id,))
    if not lines.rows:
        yield conn.query(ADD_CART_LINE, (cart_id, ctx.random_item(), 1))
        lines = yield conn.query(GET_CART_LINES, (cart_id,))
    subtotal = sum(row[1] * row[2] for row in lines.rows)
    yield conn.query(REFRESH_CART, (ctx.now(), subtotal, cart_id))
    yield conn.commit()
    ctx.cart_created = True
    return {"interaction": "buy_request", "lines": len(lines)}


def buy_confirm(conn, ctx: InteractionContext):
    """Place the order: orders + order lines + payment + stock updates."""
    cart_id = ctx.ensure_cart_id()
    yield conn.begin_update(
        ["orders", "order_line", "cc_xacts", "item", "shopping_cart", "shopping_cart_line"]
    )
    if not ctx.cart_created:
        existing = yield conn.query(GET_CART, (cart_id,))
        if not existing.rows:
            yield conn.query(CREATE_CART, (cart_id, ctx.now()))
        # ctx.cart_created is only set after the commit succeeds — a retry
        # of an aborted attempt must re-create the cart row.
    lines = yield conn.query(GET_CART_LINES, (cart_id,))
    if not lines.rows:
        yield conn.query(ADD_CART_LINE, (cart_id, ctx.random_item(), 1))
        lines = yield conn.query(GET_CART_LINES, (cart_id,))
    o_id = ctx.sequences.next_order_id()
    now = ctx.now()
    subtotal = sum(row[1] * row[2] for row in lines.rows)
    tax = round(subtotal * 0.0825, 2)
    yield conn.query(
        INSERT_ORDER,
        (o_id, ctx.customer_id, now, subtotal, tax, subtotal + tax,
         "SHIP", now + 86400.0, 1, 1),
    )
    for ol_id, (item_id, qty, _cost, _title) in enumerate(lines.rows, start=1):
        yield conn.query(INSERT_ORDER_LINE, (ol_id, o_id, item_id, qty, 0.0))
        stock_sql = UPDATE_STOCK if ctx.rng.random() < 0.9 else RESTOCK
        yield conn.query(stock_sql, (qty, item_id))
    yield conn.query(
        INSERT_CC_XACT,
        (o_id, "VISA", "4111111111111111", f"CUST{ctx.customer_id}",
         now + 365 * 86400.0, "AUTH", subtotal + tax, now, 1),
    )
    yield conn.query(CLEAR_CART_LINES, (cart_id,))
    yield conn.commit()
    ctx.cart_created = True
    ctx.cart_contents = {}
    ctx.last_order_id = o_id
    return {"interaction": "buy_confirm", "order": o_id, "lines": len(lines)}


def admin_confirm(conn, ctx: InteractionContext):
    """Admin item update: price/image change + related-items recompute."""
    item_id = ctx.random_item()
    yield conn.begin_update(["item"])
    book = yield conn.query(GET_BOOK, (item_id,))
    cost = (book.rows[0][15] if book.rows else 10.0) or 10.0
    yield conn.query(
        ADMIN_UPDATE_ITEM,
        (round(cost * 1.1, 2), f"img/full/{item_id}.gif",
         f"img/thumb/{item_id}.gif", ctx.now(), item_id),
    )
    customers = yield conn.query(ADMIN_RELATED_CUSTOMERS, (item_id,))
    related: List[int] = []
    if customers.rows:
        ids = ", ".join(str(int(r[0])) for r in customers.rows[:10])
        top = yield conn.query(
            "SELECT ol_i_id, SUM(ol_qty) AS val FROM orders, order_line "
            "WHERE orders.o_id = order_line.ol_o_id AND orders.o_c_id IN (" + ids + ") "
            "GROUP BY ol_i_id ORDER BY val DESC LIMIT 5"
        )
        related = [int(r[0]) for r in top.rows]
    while len(related) < 5:
        related.append(ctx.random_item())
    yield conn.query(ADMIN_UPDATE_RELATED, (*related[:5], item_id))
    yield conn.commit()
    return {"interaction": "admin_confirm", "item": item_id}


#: name -> (generator function, is_update)
INTERACTIONS: Dict[str, Callable] = {
    "home": home,
    "new_products": new_products,
    "best_sellers": best_sellers,
    "product_detail": product_detail,
    "search_request": search_request,
    "search_results": search_results,
    "shopping_cart": shopping_cart,
    "customer_registration": customer_registration,
    "buy_request": buy_request,
    "buy_confirm": buy_confirm,
    "order_inquiry": order_inquiry,
    "order_display": order_display,
    "admin_request": admin_request,
    "admin_confirm": admin_confirm,
}
