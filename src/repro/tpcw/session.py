"""Emulated browser sessions (the TPC-W client model).

An :class:`EmulatedBrowser` owns one session context, picks interactions
according to the configured mix, and exposes think-time draws.  The actual
driving loop lives with the transport (synchronous trampoline or simulation
process); retries after transaction aborts also happen there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Tuple

from repro.common.rng import RngStream
from repro.tpcw.interactions import INTERACTIONS, InteractionContext, SharedSequences
from repro.tpcw.mixes import Mix, UPDATE_INTERACTIONS
from repro.tpcw.schema import TpcwScale

#: TPC-W think time: exponential with mean 7 s, capped at 70 s.
THINK_TIME_MEAN = 7.0
THINK_TIME_CAP = 70.0


@dataclass
class EmulatedBrowser:
    """One emulated browser: session state + interaction selection."""

    browser_id: int
    mix: Mix
    scale: TpcwScale
    sequences: SharedSequences
    rng: RngStream
    now: Callable[[], float] = lambda: 0.0
    think_time_mean: float = THINK_TIME_MEAN
    interactions_run: int = 0

    def __post_init__(self) -> None:
        self.ctx = InteractionContext(
            rng=self.rng.child("ctx"),
            scale=self.scale,
            sequences=self.sequences,
            now=self.now,
            customer_id=self.rng.randint(1, self.scale.num_customers),
        )

    def pick(self) -> str:
        """Choose the next interaction name according to the mix."""
        return self.mix.pick(self.rng)

    def start(self, name: str, conn) -> Generator:
        """Instantiate the chosen interaction against a connection."""
        self.interactions_run += 1
        return INTERACTIONS[name](conn, self.ctx)

    def is_update(self, name: str) -> bool:
        return name in UPDATE_INTERACTIONS

    def think_time(self) -> float:
        return min(self.rng.expovariate(self.think_time_mean), THINK_TIME_CAP)

    def retry_backoff(self, attempts: int, base: float = 0.05, cap: float = 5.0) -> float:
        """Jittered exponential backoff before retry number ``attempts``.

        Drawn from this browser's own deterministic stream, so a mass abort
        (node failure) de-synchronises instead of producing lock-step retry
        waves: each browser sleeps ``base * 2^(attempts-1)`` (capped)
        scaled by an independent uniform [0.5, 1.5) jitter.
        """
        delay = min(base * (2 ** (max(1, attempts) - 1)), cap)
        return delay * self.rng.uniform(0.5, 1.5)
