"""The transport-agnostic connection protocol for TPC-W interactions.

Interactions are *generator functions*: every database call is expressed as
``result = yield conn.<call>(...)``.  The object yielded is an **effect**:

* in the embedded synchronous cluster, effects are :class:`Immediate`
  wrappers and :func:`run_sync` trampolines through them;
* in the simulation, effects are kernel events and the emulated-browser
  process forwards them to the event loop (network + CPU time elapse).

This keeps the fourteen interactions written exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence


@dataclass(frozen=True)
class Immediate:
    """A pre-resolved effect (synchronous execution)."""

    value: Any


class Connection:
    """What an interaction may ask of the system.

    Methods return effects to be ``yield``-ed.  One interaction may open
    several transactions in sequence, but never more than one at a time.
    """

    def begin_read(self, tables: Sequence[str]):
        """Open a read-only transaction touching ``tables``."""
        raise NotImplementedError

    def begin_update(self, tables: Sequence[str]):
        """Open an update transaction whose write-set is within ``tables``."""
        raise NotImplementedError

    def query(self, sql: str, params: Sequence = ()):
        """Execute one statement in the open transaction -> ResultSet."""
        raise NotImplementedError

    def commit(self):
        raise NotImplementedError

    def abort(self):
        raise NotImplementedError


def run_sync(gen: Generator) -> Any:
    """Drive an interaction generator whose effects are :class:`Immediate`."""
    value = None
    while True:
        try:
            effect = gen.send(value)
        except StopIteration as stop:
            return stop.value
        if not isinstance(effect, Immediate):
            raise TypeError(
                f"synchronous driver got non-immediate effect {effect!r}; "
                "use the simulation driver for event effects"
            )
        value = effect.value
