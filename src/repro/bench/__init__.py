"""Benchmark harness: experiment assembly, calibration and reporting.

Each paper table/figure has one target in ``benchmarks/`` that calls into
:mod:`repro.bench.harness` and prints the same rows/series the paper
reports.  Calibration constants live in :mod:`repro.bench.calibration`.
"""

from repro.bench.calibration import (
    BENCH_COST,
    BENCH_SCALE,
    FAILOVER_COST,
    FAILOVER_SCALE,
    INNODB_POOL_FRACTION,
    bench_cost,
)
from repro.bench.harness import (
    FailoverResult,
    PeakResult,
    ThroughputRun,
    find_peak,
    run_dmv_failover,
    run_dmv_throughput,
    run_innodb_failover,
    run_innodb_throughput,
    run_reintegration,
)
from repro.bench.report import format_retries, format_series, format_table

__all__ = [
    "BENCH_COST",
    "BENCH_SCALE",
    "FAILOVER_COST",
    "FAILOVER_SCALE",
    "INNODB_POOL_FRACTION",
    "bench_cost",
    "ThroughputRun",
    "PeakResult",
    "FailoverResult",
    "run_dmv_throughput",
    "run_innodb_throughput",
    "find_peak",
    "run_dmv_failover",
    "run_innodb_failover",
    "run_reintegration",
    "format_table",
    "format_series",
    "format_retries",
]
