"""Calibration: scales and cost constants used by the benchmarks.

The constants describe *one* hardware model (a dual-CPU commodity node of
the paper's era with a single commodity disk), deliberately scaled so the
simulated cluster saturates with a tractable number of emulated browsers.
All experiments share them; nothing is tuned per figure.  The headline
ratios and failover timelines then *emerge* from the model structure.

Scaling summary (paper -> here):

* database: 100K items / 288K customers (~610 MB) -> 500 items / 1440
  customers, 16 rows per page (so page counts stay meaningful);
* clients: 100..1000 emulated browsers @ 7 s think time -> 10..360 @ 1 s;
* per-statement costs inflated ~10x so each node peaks at tens (not
  thousands) of interactions per second — ratios are preserved.
"""

from __future__ import annotations

from repro.cluster.costs import CostConfig
from repro.disk.diskmodel import DiskModel
from repro.tpcw.schema import TpcwScale

#: Standard benchmark database (Figure 3 and Figure 4..6 experiments).
BENCH_SCALE = TpcwScale(num_items=500, num_customers=1440)

#: The paper's §6.3 "larger database" for the warm-up experiments
#: (400K customers there; proportionally larger here).
FAILOVER_SCALE = TpcwScale(num_items=700, num_customers=2800)

#: Rows per page on every engine in benchmarks.  One row per page keeps
#: hot-page lock-conflict probability proportionate at the scaled-down
#: database size: the paper's pages cover ~1/2000 of a 100K-row table; a
#: multi-row page over a 500-row table would cover ~100x more key space
#: and manufacture contention the real system never saw.
BENCH_ROWS_PER_PAGE = 1

#: InnoDB buffer pool ~= 40 % of the database (512 MB RAM vs 610 MB DB).
INNODB_POOL_FRACTION = 0.40

#: Benchmark think time (paper: 7 s; scaled with everything else).
BENCH_THINK_TIME = 1.0


def bench_cost(**overrides) -> CostConfig:
    """The shared cost configuration (override via keyword arguments)."""
    params = dict(
        cpu_per_statement=0.004,
        cpu_per_row_read=0.002,
        cpu_per_page_touch=0.0003,
        cpu_per_row_write=0.002,
        cpu_per_index_rotation=0.004,
        cpu_per_lock_wait=0.002,
        cpu_per_op_receive=0.0006,
        cpu_per_op_apply=0.0006,
        cpu_per_op_precommit=0.0008,
        page_fault_cost=0.004,
        net_latency=0.0003,
        net_bandwidth=50e6,
        cores_per_node=2,
        recovery_overhead=4.0,
        disk=DiskModel(seek_time=0.012, transfer_rate=40e6, fsync_time=0.015),
    )
    params.update(overrides)
    return CostConfig(**params)


BENCH_COST = bench_cost()

#: Failover experiments: identical constants (nothing is tuned per figure).
FAILOVER_COST = bench_cost()
