"""Experiment runners shared by all benchmark targets.

Throughput experiments follow the paper's methodology: a step function over
client counts, reporting the peak WIPS per configuration with warm caches
and the initial warm-up window excluded.  Failover experiments run a fixed
client population, inject one fault and report the 20-second-bucketed
throughput/latency series plus the reconfiguration timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.calibration import (
    BENCH_COST,
    BENCH_ROWS_PER_PAGE,
    BENCH_SCALE,
    BENCH_THINK_TIME,
    INNODB_POOL_FRACTION,
)
from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.cluster.simdisk import SimDiskCluster
from repro.sim.stats import TimeSeries
from repro.tpcw.datagen import TpcwDataGenerator
from repro.tpcw.mixes import MIXES
from repro.tpcw.schema import TPCW_SCHEMAS, TpcwScale

# Generated row sets are deterministic per (scale, seed): cache them so a
# parameter sweep does not regenerate the database for every step.
_ROW_CACHE: Dict[Tuple[int, int, int], List[Tuple[str, list]]] = {}


def cached_rows(scale: TpcwScale, seed: int = 42) -> List[Tuple[str, list]]:
    key = (scale.num_items, scale.num_customers, seed)
    rows = _ROW_CACHE.get(key)
    if rows is None:
        from repro.cluster.sync import datagen_tables

        rows = [(t, list(r)) for t, r in datagen_tables(TpcwDataGenerator(scale, seed))]
        _ROW_CACHE[key] = rows
    return rows


def _load_cluster(cluster, scale: TpcwScale, seed: int) -> None:
    for table, rows in cached_rows(scale, seed):
        for node in cluster.nodes.values():
            engine = node.engine if hasattr(node, "engine") else node.db.engine
            engine.bulk_load(table, rows)
    for node in cluster.nodes.values():
        if hasattr(node, "sql"):
            node.sql.invalidate_plans()
            node.checkpoint()
        else:
            node.db.sql.invalidate_plans()


def total_pages(scale: TpcwScale, seed: int = 42) -> int:
    """Pages one replica holds at this scale (for pool/cache sizing)."""
    rows = sum(len(r) for _t, r in cached_rows(scale, seed))
    return max(1, rows // BENCH_ROWS_PER_PAGE + 10)


@dataclass
class ThroughputRun:
    """One (configuration, client count) measurement."""

    clients: int
    wips: float
    latency_p95: float
    abort_rate: float
    completed: int
    #: Cluster-wide replication-pipeline totals (``net.*`` / ``slave.*``
    #: counters summed over all nodes); empty for configurations that do
    #: not replicate (stand-alone InnoDB).
    replication: Dict[str, float] = field(default_factory=dict)
    #: Client-side retries broken down by abort reason (deadlock,
    #: node-failure, reconfig-deadline, ...).
    retries_by_reason: Dict[str, int] = field(default_factory=dict)
    #: The run's tracer when measured with ``trace=True`` (else None).
    tracer: Optional[object] = None
    #: Update-commit latency percentiles in seconds (pre-commit through
    #: ack barrier); zero for configurations without the DMV commit path.
    commit_p50: float = 0.0
    commit_p95: float = 0.0
    commit_p99: float = 0.0

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage latency summaries (empty without tracing)."""
        return self.tracer.stages.summary() if self.tracer is not None else {}

    def stage_table(self) -> str:
        """Per-stage p50/p95/p99 table (empty string without tracing)."""
        return self.tracer.stage_table() if self.tracer is not None else ""

    @property
    def bytes_shipped(self) -> float:
        return self.replication.get("net.bytes_shipped", 0.0)

    @property
    def delta_savings_fraction(self) -> float:
        """Fraction of would-be write-set bytes removed by delta encoding."""
        shipped = self.replication.get("net.bytes_shipped", 0.0)
        saved = self.replication.get("net.bytes_saved_delta", 0.0)
        total = shipped + saved
        return saved / total if total else 0.0


REPLICATION_COUNTERS = (
    "net.batches",
    "net.write_sets_sent",
    "net.bytes_shipped",
    "net.bytes_saved_delta",
    "slave.ops_buffered",
    "slave.ops_applied",
    "slave.ops_coalesced",
    # Chaos / fault-path counters: all zero on a healthy run, so they
    # double as a "nothing went wrong" assertion in bench output.
    "net.drops",
    "net.retransmits",
    "net.dups_ignored",
    "net.suspicions",
    "sched.queued_updates",
    "sched.deadline_rejects",
    # Write scale-out counters: all zero on legacy single-master runs.
    "engine.epochs",
    "engine.epoch_batched_commits",
    "sched.class_rehomes",
    "sched.class_splits",
    "sched.class_merges",
    "sched.rehome_aborts",
    # Overload-robustness counters: zero unless admission control, request
    # deadlines or retry budgets are configured on.
    "sched.admission_rejects",
    "sched.deadline_cancels",
    "bench.retries_exhausted",
    "traffic.retry_budget_exhausted",
)


def replication_totals(cluster) -> Dict[str, float]:
    """Sum the replication fast-path counters over every node of a run."""
    from repro.common.counters import Counters

    sources = [node.counters for node in cluster.nodes.values()]
    cluster_counters = getattr(cluster, "counters", None)
    if cluster_counters is not None:
        sources.append(cluster_counters)
    merged = Counters.merged(sources)
    return {name: merged.get(name) for name in REPLICATION_COUNTERS}


@dataclass
class PeakResult:
    """Step-function outcome for one configuration."""

    label: str
    steps: List[ThroughputRun] = field(default_factory=list)

    @property
    def peak_wips(self) -> float:
        return max((s.wips for s in self.steps), default=0.0)

    @property
    def peak_step(self) -> Optional[ThroughputRun]:
        return max(self.steps, key=lambda s: s.wips) if self.steps else None


def _measure(cluster, duration: float, warmup_fraction: float = 0.33) -> Tuple[float, float]:
    """(steady-state WIPS, p95 latency) over the post-warm-up window."""
    cluster.run(until=duration)
    start = duration * warmup_fraction
    series = cluster.metrics.wips.series(end=duration).between(start, duration)
    wips = series.mean()
    lat = cluster.metrics.latency.percentile(95)
    return wips, lat


# -- DMV throughput -----------------------------------------------------------------
def run_dmv_throughput(
    mix_name: str,
    num_slaves: int,
    clients: int,
    duration: float = 60.0,
    scale: TpcwScale = BENCH_SCALE,
    cost: CostConfig = BENCH_COST,
    think_time: float = BENCH_THINK_TIME,
    seed: int = 0,
    trace: bool = False,
    ack_policy: str = "all",
    quorum_k: int = 1,
    straggler: Optional[str] = None,
    straggler_factor: float = 8.0,
    straggler_at: float = 0.0,
    multi_master: bool = False,
    num_masters: Optional[int] = None,
    conflict_map=None,
) -> ThroughputRun:
    """One DMV throughput step, optionally with an injected straggler.

    ``straggler`` names a node whose service times are inflated by
    ``straggler_factor`` from ``straggler_at`` onward — the gray-failure
    setup the ack-policy comparison (§ straggler tolerance) measures.
    ``multi_master``/``num_masters``/``conflict_map`` select the write
    scale-out shape (the write-path scaling figure); the defaults keep the
    legacy single-master cluster.
    """
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=num_slaves,
        conflict_map=conflict_map,
        multi_master=multi_master,
        num_masters=num_masters,
        cost_config=cost,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        seed=seed,
        trace=trace,
        ack_policy=ack_policy,
        quorum_k=quorum_k,
    )
    _load_cluster(cluster, scale, 42)
    cluster.warm_all_caches()
    if straggler is not None:
        cluster.sim.schedule(
            straggler_at, cluster.set_slowdown, straggler, straggler_factor
        )
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=think_time)
    wips, lat = _measure(cluster, duration)
    commits = cluster.metrics.commit_latency
    return ThroughputRun(
        clients, wips, lat, cluster.metrics.abort_rate(), cluster.metrics.completed,
        replication=replication_totals(cluster),
        retries_by_reason=dict(cluster.metrics.aborts_by_reason),
        tracer=cluster.tracer if trace else None,
        commit_p50=commits.percentile(50),
        commit_p95=commits.percentile(95),
        commit_p99=commits.percentile(99),
    )


@dataclass
class ProfileRun:
    """Wall-clock profile: how much simulated work one real second buys.

    Simulated WIPS measures the *modelled* system; this measures the
    simulator itself — the engine hot path (event kernel, lock manager,
    page reads, SQL plan cache) is what burns host CPU.  ``setup`` (build,
    load, warm) and the measured run are timed separately so data-generation
    cost does not dilute the hot-path number.
    """

    mix: str
    slaves: int
    clients: int
    duration: float
    seed: int
    read_concurrency: str
    setup_wall_s: float
    run_wall_s: float
    wips: float
    completed: int
    abort_rate: float
    retries_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Hot-path instrumentation: ``kernel.fast_resumes`` plus the merged
    #: ``engine.occ_*`` / ``engine.plan_cache_hits`` / ``engine.lock_fast_grants``
    #: counters (all zero when profiling the legacy 2PL path).
    hotpath_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def wips_per_wall_second(self) -> float:
        return self.wips / self.run_wall_s if self.run_wall_s else 0.0

    @property
    def completed_per_wall_second(self) -> float:
        return self.completed / self.run_wall_s if self.run_wall_s else 0.0

    @property
    def occ_abort_fraction(self) -> float:
        """occ-conflict aborts per validation (the <5 % acceptance gate)."""
        validations = self.hotpath_counters.get("engine.occ_validations", 0.0)
        aborts = self.hotpath_counters.get("engine.occ_aborts", 0.0)
        return aborts / validations if validations else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": "engine_hotpath",
            "config": {
                "mix": self.mix,
                "slaves": self.slaves,
                "clients": self.clients,
                "duration_sim_s": self.duration,
                "seed": self.seed,
                "read_concurrency": self.read_concurrency,
            },
            "setup_wall_s": round(self.setup_wall_s, 3),
            "run_wall_s": round(self.run_wall_s, 3),
            "wips": round(self.wips, 2),
            "wips_per_wall_second": round(self.wips_per_wall_second, 2),
            "completed": self.completed,
            "completed_per_wall_second": round(self.completed_per_wall_second, 1),
            "abort_rate": round(self.abort_rate, 4),
            "occ_abort_fraction": round(self.occ_abort_fraction, 4),
            "retries_by_reason": dict(self.retries_by_reason),
            "hotpath_counters": {
                k: int(v) for k, v in sorted(self.hotpath_counters.items())
            },
        }


HOTPATH_COUNTERS = (
    "engine.occ_validations",
    "engine.occ_aborts",
    "engine.plan_cache_hits",
    "engine.lock_fast_grants",
)


def run_profile(
    mix_name: str = "ordering",
    num_slaves: int = 4,
    clients: int = 100,
    duration: float = 30.0,
    seed: int = 0,
    read_concurrency: str = "occ",
    scale: TpcwScale = BENCH_SCALE,
    think_time: float = BENCH_THINK_TIME,
) -> ProfileRun:
    """Measure simulated-WIPS-per-wall-second on the DMV engine hot path."""
    import time
    from dataclasses import replace

    from repro.common.counters import Counters

    cost = replace(BENCH_COST, read_concurrency=read_concurrency)
    setup_start = time.perf_counter()
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=num_slaves,
        cost_config=cost,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        seed=seed,
    )
    _load_cluster(cluster, scale, 42)
    cluster.warm_all_caches()
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=think_time)
    run_start = time.perf_counter()
    wips, _lat = _measure(cluster, duration)
    run_wall = time.perf_counter() - run_start
    merged = Counters.merged([node.counters for node in cluster.nodes.values()])
    hotpath = {name: merged.get(name) for name in HOTPATH_COUNTERS}
    hotpath["kernel.fast_resumes"] = float(cluster.sim.fast_resumes)
    return ProfileRun(
        mix=mix_name,
        slaves=num_slaves,
        clients=clients,
        duration=duration,
        seed=seed,
        read_concurrency=read_concurrency,
        setup_wall_s=run_start - setup_start,
        run_wall_s=run_wall,
        wips=wips,
        completed=cluster.metrics.completed,
        abort_rate=cluster.metrics.abort_rate(),
        retries_by_reason=dict(cluster.metrics.aborts_by_reason),
        hotpath_counters=hotpath,
    )


@dataclass
class StragglerComparison:
    """Commit-latency matrix: (ack policy) x (straggler injected or not)."""

    baseline: ThroughputRun          # all acks, healthy cluster
    all_straggler: ThroughputRun     # all acks, one slow slave
    quorum_baseline: ThroughputRun   # quorum acks, healthy cluster
    quorum_straggler: ThroughputRun  # quorum acks, one slow slave

    def table(self) -> str:
        header = (
            f"{'configuration':<26} {'wips':>8} {'commit p50':>12} "
            f"{'commit p95':>12} {'commit p99':>12} {'p99 vs base':>12}"
        )
        base = self.baseline.commit_p99 or 1e-12
        rows = [header, "-" * len(header)]
        for label, run in (
            ("all / healthy", self.baseline),
            ("all / straggler", self.all_straggler),
            ("quorum / healthy", self.quorum_baseline),
            ("quorum / straggler", self.quorum_straggler),
        ):
            rows.append(
                f"{label:<26} {run.wips:>8.1f} {run.commit_p50 * 1000:>10.3f}ms "
                f"{run.commit_p95 * 1000:>10.3f}ms {run.commit_p99 * 1000:>10.3f}ms "
                f"{run.commit_p99 / base:>11.2f}x"
            )
        return "\n".join(rows)


def run_straggler_comparison(
    mix_name: str = "ordering",
    num_slaves: int = 3,
    clients: int = 40,
    duration: float = 60.0,
    straggler: str = "s2",
    straggler_factor: float = 12.0,
    quorum_k: int = 1,
    scale: TpcwScale = BENCH_SCALE,
    cost: CostConfig = BENCH_COST,
    think_time: float = BENCH_THINK_TIME,
    seed: int = 0,
) -> StragglerComparison:
    """The straggler-tolerance experiment: does one slow slave drag commits?

    Under ``all`` acks every update commit waits for the slowest replica,
    so commit p99 tracks the straggler's inflation.  Under ``quorum`` acks
    the laggard is demoted out of the ack set and commit latency stays at
    the healthy baseline.
    """
    common = dict(
        mix_name=mix_name, num_slaves=num_slaves, clients=clients,
        duration=duration, scale=scale, cost=cost,
        think_time=think_time, seed=seed,
    )
    return StragglerComparison(
        baseline=run_dmv_throughput(**common),
        all_straggler=run_dmv_throughput(
            **common, straggler=straggler, straggler_factor=straggler_factor
        ),
        quorum_baseline=run_dmv_throughput(
            **common, ack_policy="quorum", quorum_k=quorum_k
        ),
        quorum_straggler=run_dmv_throughput(
            **common, ack_policy="quorum", quorum_k=quorum_k,
            straggler=straggler, straggler_factor=straggler_factor,
        ),
    )


def run_innodb_throughput(
    mix_name: str,
    clients: int,
    duration: float = 60.0,
    scale: TpcwScale = BENCH_SCALE,
    cost: CostConfig = BENCH_COST,
    think_time: float = BENCH_THINK_TIME,
    pool_fraction: float = INNODB_POOL_FRACTION,
    seed: int = 0,
) -> ThroughputRun:
    pool = max(8, int(total_pages(scale) * pool_fraction))
    cluster = SimDiskCluster(
        TPCW_SCHEMAS,
        num_active=1,
        pool_pages=pool,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        cost_config=cost,
        seed=seed,
    )
    _load_cluster(cluster, scale, 42)
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=think_time)
    wips, lat = _measure(cluster, duration)
    return ThroughputRun(
        clients, wips, lat, cluster.metrics.abort_rate(), cluster.metrics.completed,
        retries_by_reason=dict(cluster.metrics.aborts_by_reason),
    )


def find_peak(
    label: str,
    runner: Callable[[int], ThroughputRun],
    client_steps: List[int],
    improvement: float = 1.05,
) -> PeakResult:
    """Step-function search: stop once adding clients stops helping."""
    result = PeakResult(label)
    best = 0.0
    for clients in client_steps:
        step = runner(clients)
        result.steps.append(step)
        if step.wips < best * improvement:
            break
        best = max(best, step.wips)
    return result


# -- failover experiments --------------------------------------------------------------
@dataclass
class FailoverResult:
    """Series + timeline of one fault-injection experiment."""

    label: str
    series: TimeSeries
    latency_series: TimeSeries
    kill_time: float
    timeline: Optional[object] = None
    metrics: Optional[object] = None

    def mean_before(self, window: float = 60.0) -> float:
        return self.series.between(max(0.0, self.kill_time - window), self.kill_time).mean()

    def mean_during(self, start_offset: float, end_offset: float) -> float:
        return self.series.between(
            self.kill_time + start_offset, self.kill_time + end_offset
        ).mean()

    def recovery_point(self, threshold: float = 0.9, window: float = 20.0) -> float:
        """Offset after the failure at which service stays recovered.

        "Recovered" = two consecutive buckets at or above ``threshold`` of
        the pre-failure baseline (one bucket alone is too noisy).  Returns
        the measurement horizon if the series never recovers.
        """
        baseline = self.mean_before()
        if baseline <= 0:
            return 0.0
        post = self.series.between(self.kill_time, self.series.times[-1] + 1)
        values = post.values
        for i, (t, value) in enumerate(zip(post.times, values)):
            next_ok = i + 1 >= len(values) or values[i + 1] >= threshold * baseline
            if value >= threshold * baseline and next_ok:
                return max(0.0, t - self.kill_time)
        horizon = self.series.times[-1] - self.kill_time if self.series.times else 0.0
        return max(0.0, horizon)


def run_dmv_failover(
    victim: str,
    mix_name: str = "shopping",
    num_slaves: int = 2,
    num_spares: int = 0,
    stale_backup: bool = False,
    spare_read_fraction: float = 0.0,
    pageid_ship_every: float = 0.0,
    warm_spares: bool = True,
    clients: int = 60,
    kill_at: float = 120.0,
    duration: float = 420.0,
    scale: TpcwScale = BENCH_SCALE,
    cost: CostConfig = BENCH_COST,
    checkpoint_period: float = 1e9,
    think_time: float = BENCH_THINK_TIME,
    seed: int = 0,
) -> FailoverResult:
    """Kill one in-memory node at ``kill_at`` and watch the reconfiguration."""
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=num_slaves,
        num_spares=num_spares,
        cost_config=cost,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        seed=seed,
        spare_read_fraction=spare_read_fraction,
        pageid_ship_every=pageid_ship_every,
        checkpoint_period=checkpoint_period,
    )
    _load_cluster(cluster, scale, 42)
    cluster.warm_all_caches()
    for i in range(num_spares):
        spare_id = f"spare{i}"
        if stale_backup:
            cluster.make_stale_backup(spare_id)
        if not warm_spares:
            cluster.chill_cache(spare_id)
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=think_time)
    cluster.kill_node_at(victim, kill_at)
    cluster.run(until=duration)
    timeline = cluster.timelines[0] if cluster.timelines else None
    return FailoverResult(
        label=f"dmv/{victim}",
        series=cluster.metrics.wips.series(end=duration),
        latency_series=cluster.metrics.latency_series.bucketed(20.0),
        kill_time=kill_at,
        timeline=timeline,
        metrics=cluster.metrics,
    )


def run_innodb_failover(
    mix_name: str = "shopping",
    clients: int = 20,
    kill_at: float = 300.0,
    duration: float = 900.0,
    refresh_interval: float = 280.0,
    scale: TpcwScale = BENCH_SCALE,
    cost: CostConfig = BENCH_COST,
    think_time: float = BENCH_THINK_TIME,
    pool_fraction: float = INNODB_POOL_FRACTION,
    seed: int = 0,
) -> FailoverResult:
    """The paper's baseline: 2 active on-disk replicas + 1 stale backup."""
    pool = max(8, int(total_pages(scale) * pool_fraction))
    cluster = SimDiskCluster(
        TPCW_SCHEMAS,
        num_active=2,
        num_passive=1,
        pool_pages=pool,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        cost_config=cost,
        refresh_interval=refresh_interval,
        seed=seed,
    )
    _load_cluster(cluster, scale, 42)
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=think_time)
    cluster.kill_node_at("d0", kill_at)
    cluster.run(until=duration)
    timeline = cluster.timelines[0] if cluster.timelines else None
    return FailoverResult(
        label="innodb/stale-backup",
        series=cluster.metrics.wips.series(end=duration),
        latency_series=cluster.metrics.latency_series.bucketed(20.0),
        kill_time=kill_at,
        timeline=timeline,
        metrics=cluster.metrics,
    )


def run_reintegration(
    mix_name: str = "shopping",
    num_slaves: int = 4,
    clients: int = 60,
    kill_at: float = 120.0,
    reboot_delay: float = 60.0,
    duration: float = 420.0,
    scale: TpcwScale = BENCH_SCALE,
    cost: CostConfig = BENCH_COST,
    checkpoint_period: float = 1e9,
    think_time: float = BENCH_THINK_TIME,
    seed: int = 0,
) -> FailoverResult:
    """The Figure 4 experiment: kill the master, reboot, reintegrate."""
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=num_slaves,
        cost_config=cost,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        seed=seed,
        checkpoint_period=checkpoint_period,
    )
    _load_cluster(cluster, scale, 42)
    cluster.warm_all_caches()
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=think_time)
    cluster.kill_node_at("m0", kill_at)
    cluster.sim.schedule(kill_at + reboot_delay, cluster.reintegrate, "m0")
    cluster.run(until=duration)
    reintegration = next(
        (t for t in cluster.timelines if t.migration_pages > 0), None
    )
    return FailoverResult(
        label="dmv/reintegration",
        series=cluster.metrics.wips.series(end=duration),
        latency_series=cluster.metrics.latency_series.bucketed(20.0),
        kill_time=kill_at,
        timeline=reintegration,
        metrics=cluster.metrics,
    )
