"""Fig. 3-style capacity sweep for partial replication + hot/cold tiering.

The paper's capacity argument: a cluster whose slaves each hold only a
slice of the database (interest sets) plus a bounded resident-page budget
(hot/cold tiering) can serve an aggregate dataset larger than any single
node's memory.  This sweep fixes the workload (shopping mix, partial
interest sets) and steps the per-slave resident-page budget down from
"everything fits" to "a fraction of the dataset", reporting throughput,
fault traffic and the invariant verdicts at every point.

The headline acceptance point is ``dataset_pages >= 2 * budget``: the
cluster keeps completing interactions (pages spill and re-fault through
the LRU, charged via the cost model) and every invariant — including
``interest-coverage`` — stays green.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.calibration import BENCH_COST, BENCH_ROWS_PER_PAGE, BENCH_SCALE
from repro.bench.harness import _load_cluster, _measure
from repro.chaos.invariants import check_all_invariants
from repro.chaos.scenario import partial_interest_sets
from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.common.counters import Counters
from repro.tpcw.mixes import MIXES
from repro.tpcw.schema import TPCW_SCHEMAS, TpcwScale

#: Counters worth carrying into the artifact: partial-replication traffic
#: savings, coverage routing decisions and the tiering churn that proves
#: cold pages actually spilled.
CAPACITY_COUNTERS = (
    "net.bytes_shipped",
    "net.bytes_saved_partial",
    "net.write_sets_filtered",
    "sched.coverage_rejects",
    "sched.partial_master_fallbacks",
    "cache.hits",
    "cache.misses",
    "cache.evictions",
)


@dataclass
class CapacityPoint:
    """One (resident-page budget) measurement."""

    #: Per-slave resident-page budget; None means uncapped (full residence).
    budget_pages: Optional[int]
    wips: float
    latency_p95: float
    completed: int
    #: Pages of the loaded dataset (counted on a full-interest master).
    dataset_pages: int
    invariants_ok: bool
    invariant_failures: List[str] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def capacity_ratio(self) -> float:
        """dataset_pages / budget — >= 2.0 is the acceptance point."""
        if not self.budget_pages:
            return 1.0
        return self.dataset_pages / self.budget_pages

    def to_dict(self) -> Dict[str, object]:
        return {
            "budget_pages": self.budget_pages,
            "wips": self.wips,
            "latency_p95": self.latency_p95,
            "completed": self.completed,
            "dataset_pages": self.dataset_pages,
            "capacity_ratio": self.capacity_ratio,
            "invariants_ok": self.invariants_ok,
            "invariant_failures": list(self.invariant_failures),
            "counters": dict(self.counters),
        }


@dataclass
class CapacitySweep:
    mix: str
    clients: int
    duration: float
    seed: int
    dataset_pages: int
    points: List[CapacityPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.invariants_ok and p.completed > 0 for p in self.points)

    @property
    def acceptance_point(self) -> Optional[CapacityPoint]:
        """The tightest measured point with dataset >= 2x one slave's budget."""
        eligible = [p for p in self.points if p.budget_pages and p.capacity_ratio >= 2.0]
        return min(eligible, key=lambda p: p.budget_pages) if eligible else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "mix": self.mix,
            "clients": self.clients,
            "duration": self.duration,
            "seed": self.seed,
            "dataset_pages": self.dataset_pages,
            "ok": self.ok,
            "points": [p.to_dict() for p in self.points],
        }

    def table(self) -> str:
        header = (
            f"{'budget':>9} {'x-dataset':>9} {'wips':>8} {'p95(ms)':>8} "
            f"{'completed':>9} {'evictions':>9} {'cov.rejects':>11} {'invariants':>10}"
        )
        lines = [header]
        for p in self.points:
            budget = "uncapped" if not p.budget_pages else str(p.budget_pages)
            ratio = "-" if not p.budget_pages else f"{p.capacity_ratio:.1f}x"
            lines.append(
                f"{budget:>9} {ratio:>9} {p.wips:>8.2f} "
                f"{p.latency_p95 * 1e3:>8.1f} {p.completed:>9d} "
                f"{int(p.counters.get('cache.evictions', 0)):>9d} "
                f"{int(p.counters.get('sched.coverage_rejects', 0)):>11d} "
                f"{'OK' if p.invariants_ok else 'FAIL':>10}"
            )
        return "\n".join(lines)


def _merged_counters(cluster) -> Counters:
    sources = [node.counters for node in cluster.nodes.values()]
    sources.append(cluster.counters)
    return Counters.merged(sources)


def run_capacity_point(
    budget_pages: Optional[int],
    mix_name: str = "shopping",
    clients: int = 24,
    duration: float = 40.0,
    seed: int = 0,
    scale: TpcwScale = BENCH_SCALE,
    rows_per_page: int = BENCH_ROWS_PER_PAGE,
    cost: CostConfig = BENCH_COST,
    interest_sets: Optional[Dict[str, Optional[Sequence[str]]]] = None,
    num_slaves: int = 3,
) -> CapacityPoint:
    """Measure one budget point of the partial-replication capacity sweep."""
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=num_slaves,
        cost_config=cost,
        rows_per_page=rows_per_page,
        seed=seed,
        interest_sets=(
            interest_sets if interest_sets is not None else partial_interest_sets()
        ),
        min_replication_factor=2,
        slave_cache_pages=budget_pages,
    )
    _load_cluster(cluster, scale, 42)
    # Warm through the budgeted LRU: with a finite budget only the most
    # recently touched pages stay resident — the sweep's cold tier.
    cluster.warm_all_caches()
    cluster.start_browsers(clients, MIXES[mix_name], scale, think_time_mean=1.0)
    wips, lat = _measure(cluster, duration)
    master = next(node for node in cluster.nodes.values() if node.master is not None)
    dataset_pages = sum(1 for _ in master.engine.store.all_pages())
    results = check_all_invariants(cluster)
    merged = _merged_counters(cluster)
    return CapacityPoint(
        budget_pages=budget_pages,
        wips=wips,
        latency_p95=lat,
        completed=cluster.metrics.completed,
        dataset_pages=dataset_pages,
        invariants_ok=all(r.ok for r in results),
        invariant_failures=[f"{r.name}: {r.detail}" for r in results if not r.ok],
        counters={name: merged.get(name) for name in CAPACITY_COUNTERS},
    )


def run_capacity_sweep(
    budgets: Optional[Sequence[Optional[int]]] = None,
    mix_name: str = "shopping",
    clients: int = 24,
    duration: float = 40.0,
    seed: int = 0,
    scale: TpcwScale = BENCH_SCALE,
    rows_per_page: int = BENCH_ROWS_PER_PAGE,
    cost: CostConfig = BENCH_COST,
) -> CapacitySweep:
    """Step the per-slave resident budget down across the fixed workload.

    The default grid derives from the dataset size: uncapped (legacy full
    residence), a comfortable half-dataset budget, the 2x acceptance point
    (budget = dataset/2) and a punishing dataset/4 point.
    """
    probe = run_capacity_point(
        None, mix_name, 1, 1.0, seed, scale, rows_per_page, cost
    )
    dataset_pages = probe.dataset_pages
    if budgets is None:
        budgets = [
            None,
            max(2, (dataset_pages * 3) // 4),
            max(2, dataset_pages // 2),
            max(1, dataset_pages // 4),
        ]
    sweep = CapacitySweep(
        mix=mix_name,
        clients=clients,
        duration=duration,
        seed=seed,
        dataset_pages=dataset_pages,
    )
    for budget in budgets:
        sweep.points.append(
            run_capacity_point(
                budget, mix_name, clients, duration, seed, scale, rows_per_page, cost
            )
        )
    return sweep
