"""The metastability demo: defenses-OFF vs defenses-ON under a flash crowd.

Both arms run the *same* seeded open-loop flash-crowd scenario on the
*same* server shape (:func:`repro.traffic.scenario.overload_base_config`:
bounded update MPL + epoch commit on a deliberately slow cost model); the
only difference is the defense stack
(:func:`repro.traffic.scenario.overload_defense_config`: admission
control, request deadlines, retry budgets, circuit breaking).

The headline number is **SLO-goodput degraded duration** after the burst
ends: with defenses off the burst's backlog and retry amplification keep
goodput below the recovery threshold long after offered load returns to
the base rate (the metastable failure state — often it never recovers);
with defenses on the excess is shed cheaply at the door and goodput
recovers within seconds.  The acceptance gate requires OFF to stay
degraded at least ``min_ratio`` (default 2x) longer than ON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.chaos.scenario import overload_chaos_plan, run_chaos_scenario
from repro.traffic.scenario import (
    flash_crowd_scenario,
    overload_base_config,
    overload_defense_config,
)


@dataclass
class OverloadArm:
    """One arm (defenses on or off) of the comparison."""

    defenses: str
    fingerprint: str
    invariants_ok: bool
    invariant_failures: tuple
    pre_burst_rate: float
    recovered: bool
    degraded_duration: float
    slo_attainment: float
    counters: Dict[str, float]
    traffic: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "defenses": self.defenses,
            "fingerprint": self.fingerprint,
            "invariants_ok": self.invariants_ok,
            "invariant_failures": list(self.invariant_failures),
            "pre_burst_rate": self.pre_burst_rate,
            "recovered": self.recovered,
            "degraded_duration": self.degraded_duration,
            "slo_attainment": self.slo_attainment,
            "counters": self.counters,
            "traffic": self.traffic,
        }


@dataclass
class OverloadComparison:
    """Both arms + the degraded-duration ratio gate."""

    seed: int
    duration: float
    min_ratio: float
    off: OverloadArm
    on: OverloadArm

    @property
    def ratio(self) -> float:
        """OFF degraded duration over ON's (inf when ON recovers instantly)."""
        if self.off.degraded_duration <= 0:
            return 0.0
        if self.on.degraded_duration <= 0:
            return float("inf")
        return self.off.degraded_duration / self.on.degraded_duration

    @property
    def ok(self) -> bool:
        """ON must be healthy AND OFF must stay degraded >= min_ratio longer."""
        if not self.on.invariants_ok or not self.on.recovered:
            return False
        return self.off.degraded_duration >= self.min_ratio * max(
            self.on.degraded_duration, 1e-9
        )

    def summary(self) -> str:
        def arm_line(arm: OverloadArm) -> str:
            recovery = (
                f"degraded {arm.degraded_duration:.1f}s"
                + ("" if arm.recovered else " (never recovered)")
            )
            return (
                f"  defenses {arm.defenses:>3}: {recovery}, "
                f"slo={100.0 * arm.slo_attainment:.1f}%, "
                f"invariants {'OK' if arm.invariants_ok else 'FAIL'}, "
                f"fingerprint {arm.fingerprint}"
            )

        ratio = self.ratio
        ratio_text = "inf" if ratio == float("inf") else f"{ratio:.1f}"
        return "\n".join(
            [
                f"overload metastability demo (seed={self.seed}, "
                f"duration={self.duration:g}s, flash crowd):",
                arm_line(self.off),
                arm_line(self.on),
                f"  degraded-duration ratio OFF/ON = {ratio_text}x "
                f"(gate: >= {self.min_ratio:g}x) -> "
                + ("PASS" if self.ok else "FAIL"),
            ]
        )

    def to_dict(self) -> Dict[str, object]:
        ratio = self.ratio
        return {
            "bench": "overload_metastability",
            "seed": self.seed,
            "duration": self.duration,
            "min_ratio": self.min_ratio,
            "ratio": None if ratio == float("inf") else ratio,
            "ok": self.ok,
            "arms": {"off": self.off.to_dict(), "on": self.on.to_dict()},
        }


#: Counters worth carrying into the bench artifact (the CI smoke greps
#: the first three from the chaos run; the artifact records both arms).
_ARM_COUNTERS = (
    "sched.admission_rejects",
    "sched.deadline_cancels",
    "traffic.retry_budget_exhausted",
    "traffic.breaker_short_circuits",
    "traffic.requests_injected",
    "bench.retries_exhausted",
)


def _run_arm(defenses: str, seed: int, duration: float) -> OverloadArm:
    cost_config = (
        overload_defense_config() if defenses == "on" else overload_base_config()
    )
    scenario = flash_crowd_scenario(duration=duration, seed=seed)
    report = run_chaos_scenario(
        seed=seed,
        plan=overload_chaos_plan(seed, duration),
        cost_config=cost_config,
        traffic=scenario,
    )
    recovery = report.traffic.burst_recovery()
    pre_rate, recovered_at, degraded = recovery if recovery else (0.0, None, 0.0)
    totals = report.traffic.totals()
    return OverloadArm(
        defenses=defenses,
        fingerprint=report.fingerprint,
        invariants_ok=report.ok(),
        invariant_failures=tuple(
            str(result) for result in report.invariants if not result.ok
        ),
        pre_burst_rate=pre_rate,
        recovered=recovered_at is not None,
        degraded_duration=degraded,
        slo_attainment=totals.slo_attainment(),
        counters={
            name: report.counters.get(name, 0) for name in _ARM_COUNTERS
        },
        traffic=report.traffic.to_json(),
    )


def run_overload_comparison(
    seed: int = 0,
    duration: float = 200.0,
    min_ratio: float = 2.0,
) -> OverloadComparison:
    """Run both arms of the flash-crowd comparison on one seed."""
    return OverloadComparison(
        seed=seed,
        duration=duration,
        min_ratio=min_ratio,
        off=_run_arm("off", seed, duration),
        on=_run_arm("on", seed, duration),
    )
