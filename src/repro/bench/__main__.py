"""CLI entry point: ``PYTHONPATH=src python -m repro.bench [--trace]``.

Runs one DMV throughput measurement (one mix, one client count) and prints
the paper-style summary line.  With ``--trace`` the run also records the
transaction-lifecycle spans: the per-stage p50/p95/p99 latency table (the
shape of the paper's Fig. 6 breakdown) is printed and a Chrome-trace JSON
is written for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import (
    run_dmv_throughput,
    run_profile,
    run_straggler_comparison,
)
from repro.tpcw.mixes import MIXES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description="Run one DMV throughput measurement."
    )
    # Defaults resolve per sub-command: the throughput run measures the
    # modelled system (shopping mix, 30 clients, 2 slaves, 60 sim-s), the
    # hot-path profile measures the simulator itself on its reference
    # configuration (ordering mix, 100 clients, 4 slaves, 30 sim-s).
    parser.add_argument(
        "--mix", default=None, choices=sorted(MIXES), help="TPC-W mix"
    )
    parser.add_argument("--clients", type=int, default=None, help="emulated browsers")
    parser.add_argument("--slaves", type=int, default=None, help="slave replicas")
    parser.add_argument("--duration", type=float, default=None, help="virtual seconds")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wall-clock engine hot-path profile: reports simulated WIPS per "
        "wall-second (setup and measured run timed separately) and writes "
        "BENCH_engine_hotpath.json",
    )
    parser.add_argument(
        "--profile-out",
        default="benchmarks/results/BENCH_engine_hotpath.json",
        metavar="PATH",
        help="result file for --profile",
    )
    parser.add_argument(
        "--read-concurrency",
        choices=("occ", "2pl"),
        default="occ",
        help="master read/validation path for --profile runs",
    )
    parser.add_argument(
        "--min-wips-per-wall",
        type=float,
        default=0.0,
        metavar="X",
        help="with --profile: exit non-zero unless simulated-WIPS-per-wall-second "
        ">= X (the CI perf-smoke regression gate)",
    )
    parser.add_argument(
        "--capacity-sweep",
        action="store_true",
        help="partial-replication capacity sweep (Fig. 3 shape): step the "
        "per-slave resident-page budget down to a fraction of the dataset "
        "and report throughput + invariant verdicts per point",
    )
    parser.add_argument(
        "--capacity-out",
        default="benchmarks/results/partial_capacity_sweep.json",
        metavar="PATH",
        help="result file for --capacity-sweep",
    )
    parser.add_argument(
        "--budgets",
        default=None,
        metavar="N,N,...",
        help="explicit per-slave page budgets for --capacity-sweep "
        "('none' = uncapped); default derives a grid from the dataset size",
    )
    parser.add_argument(
        "--overload-compare",
        action="store_true",
        help="run the flash-crowd metastability demo (defenses OFF vs ON on "
        "the same seed and server shape) and gate on the OFF arm staying "
        "SLO-degraded >= --min-degraded-ratio x longer than ON",
    )
    parser.add_argument(
        "--overload-out",
        default="benchmarks/results/BENCH_overload.json",
        metavar="PATH",
        help="result file for --overload-compare",
    )
    parser.add_argument(
        "--min-degraded-ratio",
        type=float,
        default=2.0,
        metavar="X",
        help="with --overload-compare: required OFF/ON degraded-duration ratio",
    )
    parser.add_argument(
        "--straggler-compare",
        action="store_true",
        help="run the (ack policy) x (straggler) commit-latency matrix and "
        "write the table to benchmarks/results/straggler_ack_policies.txt",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/straggler_ack_policies.txt",
        metavar="PATH",
        help="result file for --straggler-compare",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record transaction spans; prints the per-stage latency table "
        "and writes a Chrome-trace JSON (see --trace-out)",
    )
    parser.add_argument(
        "--trace-out",
        default="bench-trace.json",
        metavar="PATH",
        help="Chrome-trace output path when --trace is set",
    )
    args = parser.parse_args(argv)

    if args.profile:
        import json
        import os

        run = run_profile(
            mix_name=args.mix if args.mix is not None else "ordering",
            num_slaves=args.slaves if args.slaves is not None else 4,
            clients=args.clients if args.clients is not None else 100,
            duration=args.duration if args.duration is not None else 30.0,
            seed=args.seed,
            read_concurrency=args.read_concurrency,
        )
        print(
            f"engine hotpath profile mix={run.mix} slaves={run.slaves} "
            f"clients={run.clients} duration={run.duration:g}s "
            f"read_concurrency={run.read_concurrency}:"
        )
        print(
            f"  setup_wall={run.setup_wall_s:.3f}s run_wall={run.run_wall_s:.3f}s "
            f"wips={run.wips:.2f} completed={run.completed}"
        )
        print(
            f"  wips_per_wall_second={run.wips_per_wall_second:.2f} "
            f"completed_per_wall_second={run.completed_per_wall_second:.1f} "
            f"occ_abort_fraction={run.occ_abort_fraction * 100:.2f}%"
        )
        os.makedirs(os.path.dirname(args.profile_out) or ".", exist_ok=True)
        with open(args.profile_out, "w") as fh:
            json.dump(run.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results -> {args.profile_out}")
        if args.min_wips_per_wall and run.wips_per_wall_second < args.min_wips_per_wall:
            print(
                f"FAIL: wips_per_wall_second {run.wips_per_wall_second:.2f} "
                f"< required {args.min_wips_per_wall:g}"
            )
            return 1
        return 0

    mix = args.mix if args.mix is not None else "shopping"
    clients = args.clients if args.clients is not None else 30
    slaves = args.slaves if args.slaves is not None else 2
    duration = args.duration if args.duration is not None else 60.0

    if args.capacity_sweep:
        import json
        import os

        from repro.bench.capacity import run_capacity_sweep

        budgets = None
        if args.budgets:
            budgets = [
                None if tok.strip().lower() in ("none", "uncapped") else int(tok)
                for tok in args.budgets.split(",")
            ]
        sweep = run_capacity_sweep(
            budgets=budgets,
            mix_name=mix,
            clients=args.clients if args.clients is not None else 24,
            duration=args.duration if args.duration is not None else 40.0,
            seed=args.seed,
        )
        print(
            f"partial-replication capacity sweep mix={sweep.mix} "
            f"clients={sweep.clients} duration={sweep.duration:g}s "
            f"seed={sweep.seed} dataset={sweep.dataset_pages} pages:"
        )
        print(sweep.table())
        accept = sweep.acceptance_point
        if accept is not None:
            print(
                f"acceptance: budget={accept.budget_pages} pages serves "
                f"{accept.capacity_ratio:.1f}x its resident set "
                f"(completed={accept.completed}, invariants "
                f"{'OK' if accept.invariants_ok else 'FAIL'})"
            )
        os.makedirs(os.path.dirname(args.capacity_out) or ".", exist_ok=True)
        with open(args.capacity_out, "w") as fh:
            json.dump(sweep.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results -> {args.capacity_out}")
        if not sweep.ok:
            for point in sweep.points:
                for failure in point.invariant_failures:
                    print(f"FAIL [budget={point.budget_pages}]: {failure}")
            return 1
        if accept is None:
            print("FAIL: no measured point had dataset >= 2x the slave budget")
            return 1
        return 0

    if args.overload_compare:
        import json
        import os

        from repro.bench.overload import run_overload_comparison

        comparison = run_overload_comparison(
            seed=args.seed,
            duration=args.duration if args.duration is not None else 200.0,
            min_ratio=args.min_degraded_ratio,
        )
        print(comparison.summary())
        os.makedirs(os.path.dirname(args.overload_out) or ".", exist_ok=True)
        with open(args.overload_out, "w") as fh:
            json.dump(comparison.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results -> {args.overload_out}")
        return 0 if comparison.ok else 1

    if args.straggler_compare:
        import os

        comparison = run_straggler_comparison(
            mix_name="ordering" if mix == "shopping" else mix,
            num_slaves=max(3, slaves),
            clients=clients,
            duration=duration,
            seed=args.seed,
        )
        table = comparison.table()
        print(table)
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(
                "Commit latency under one straggler: ack policy comparison\n"
                f"(mix=ordering slaves={max(3, slaves)} clients={clients} "
                f"duration={duration:g}s seed={args.seed}; straggler=s2 x12)\n\n"
            )
            fh.write(table + "\n")
        print(f"results -> {args.out}")
        return 0

    run = run_dmv_throughput(
        mix,
        num_slaves=slaves,
        clients=clients,
        duration=duration,
        seed=args.seed,
        trace=args.trace,
    )
    print(
        f"dmv mix={mix} slaves={slaves} clients={run.clients}: "
        f"wips={run.wips:.2f} p95={run.latency_p95 * 1e3:.1f}ms "
        f"commit_p99={run.commit_p99 * 1e3:.2f}ms "
        f"aborts={run.abort_rate * 100:.2f}% completed={run.completed}"
    )
    if args.trace and run.tracer is not None:
        from repro.obs import write_chrome_trace

        print("per-stage latency breakdown (virtual clock):")
        print(run.stage_table())
        events = write_chrome_trace(args.trace_out, run.tracer)
        print(f"trace: {events} events -> {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
