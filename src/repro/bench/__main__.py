"""CLI entry point: ``PYTHONPATH=src python -m repro.bench [--trace]``.

Runs one DMV throughput measurement (one mix, one client count) and prints
the paper-style summary line.  With ``--trace`` the run also records the
transaction-lifecycle spans: the per-stage p50/p95/p99 latency table (the
shape of the paper's Fig. 6 breakdown) is printed and a Chrome-trace JSON
is written for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import run_dmv_throughput, run_straggler_comparison
from repro.tpcw.mixes import MIXES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description="Run one DMV throughput measurement."
    )
    parser.add_argument(
        "--mix", default="shopping", choices=sorted(MIXES), help="TPC-W mix"
    )
    parser.add_argument("--clients", type=int, default=30, help="emulated browsers")
    parser.add_argument("--slaves", type=int, default=2, help="slave replicas")
    parser.add_argument("--duration", type=float, default=60.0, help="virtual seconds")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--straggler-compare",
        action="store_true",
        help="run the (ack policy) x (straggler) commit-latency matrix and "
        "write the table to benchmarks/results/straggler_ack_policies.txt",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/straggler_ack_policies.txt",
        metavar="PATH",
        help="result file for --straggler-compare",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record transaction spans; prints the per-stage latency table "
        "and writes a Chrome-trace JSON (see --trace-out)",
    )
    parser.add_argument(
        "--trace-out",
        default="bench-trace.json",
        metavar="PATH",
        help="Chrome-trace output path when --trace is set",
    )
    args = parser.parse_args(argv)

    if args.straggler_compare:
        import os

        comparison = run_straggler_comparison(
            mix_name="ordering" if args.mix == "shopping" else args.mix,
            num_slaves=max(3, args.slaves),
            clients=args.clients,
            duration=args.duration,
            seed=args.seed,
        )
        table = comparison.table()
        print(table)
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(
                "Commit latency under one straggler: ack policy comparison\n"
                f"(mix=ordering slaves={max(3, args.slaves)} clients={args.clients} "
                f"duration={args.duration:g}s seed={args.seed}; straggler=s2 x12)\n\n"
            )
            fh.write(table + "\n")
        print(f"results -> {args.out}")
        return 0

    run = run_dmv_throughput(
        args.mix,
        num_slaves=args.slaves,
        clients=args.clients,
        duration=args.duration,
        seed=args.seed,
        trace=args.trace,
    )
    print(
        f"dmv mix={args.mix} slaves={args.slaves} clients={run.clients}: "
        f"wips={run.wips:.2f} p95={run.latency_p95 * 1e3:.1f}ms "
        f"commit_p99={run.commit_p99 * 1e3:.2f}ms "
        f"aborts={run.abort_rate * 100:.2f}% completed={run.completed}"
    )
    if args.trace and run.tracer is not None:
        from repro.obs import write_chrome_trace

        print("per-stage latency breakdown (virtual clock):")
        print(run.stage_table())
        events = write_chrome_trace(args.trace_out, run.tracer)
        print(f"trace: {events} events -> {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
