"""Report formatting for benchmark output."""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.stats import TimeSeries, pretty_table


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A titled, aligned table block."""
    body = pretty_table(headers, rows)
    bar = "=" * max(len(title), 8)
    return f"\n{title}\n{bar}\n{body}\n"


def format_retries(retries_by_reason) -> str:
    """One-line retry breakdown for a bench summary (``-`` when clean)."""
    if not retries_by_reason:
        return "retries: -"
    parts = ", ".join(
        f"{reason}={count}" for reason, count in sorted(retries_by_reason.items())
    )
    return f"retries: {parts}"


def format_series(title: str, series: TimeSeries, width: int = 50, unit: str = "") -> str:
    """An ASCII sparkline table of a time series (paper-style figure)."""
    lines = [f"\n{title}", "=" * max(len(title), 8)]
    peak = max(series.values) if series.values else 1.0
    peak = peak or 1.0
    for t, value in zip(series.times, series.values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"t={t:8.1f}s  {value:9.2f}{unit}  |{bar}")
    return "\n".join(lines) + "\n"
