"""Fuzzy checkpointing to per-node stable storage.

Each slave periodically walks its pages and persists ``(page image,
version)`` pairs; a flush of one page with its version is atomic, but the
checkpoint as a whole is *fuzzy*: it needs no quiescence and different
pages may be captured at different versions.  That is safe precisely
because Dynamic Multiversioning already tolerates pages at heterogeneous
versions — a recovering node asks a support slave only for pages *newer*
than its checkpointed versions.

``StableStore`` stands in for the node's local disk: it survives the loss
of the node's in-memory state (our failure injection wipes the
:class:`~repro.storage.page.PageStore` but keeps the stable store).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.counters import Counters
from repro.common.errors import SchemaError
from repro.common.ids import PageId
from repro.storage.page import Page, PageStore


@dataclass
class PageImage:
    """An atomically flushed copy of one page plus its version."""

    page_id: PageId
    version: int
    page: Page  # snapshot, never aliased with the live page


class StableStore:
    """Per-node durable page-image store (local-disk stand-in)."""

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self._images: Dict[PageId, PageImage] = {}
        self.counters = counters if counters is not None else Counters()
        self.flushes = 0

    def flush_page(self, page: Page) -> None:
        """Atomically persist one page image with its current version."""
        snapshot = page.snapshot()
        self._images[page.page_id] = PageImage(page.page_id, snapshot.version, snapshot)
        self.flushes += 1
        self.counters.add("checkpoint.pages_flushed")
        self.counters.add("checkpoint.bytes", snapshot.byte_size())

    def load(self, page_id: PageId) -> Optional[PageImage]:
        return self._images.get(page_id)

    def version_map(self) -> Dict[PageId, int]:
        """Per-page checkpointed versions — the recovery handshake payload."""
        return {pid: image.version for pid, image in self._images.items()}

    def restore_into(self, store: PageStore) -> int:
        """Rebuild a page store from the checkpoint (node restart path)."""
        count = 0
        for image in sorted(self._images.values(), key=lambda i: i.page_id):
            page = store.get_or_allocate(image.page_id)
            page.load_from(image.page)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._images)

    # -- file persistence (embedded-library durability) ---------------------------
    def save_to(self, path: str) -> int:
        """Persist every checkpointed page image to ``path`` (JSON lines).

        The write is atomic: a temp file is renamed over the target, so a
        crash mid-save leaves the previous checkpoint intact.  Returns the
        number of pages written.
        """
        temp = f"{path}.tmp"
        with open(temp, "w", encoding="utf-8") as fh:
            for image in sorted(self._images.values(), key=lambda i: i.page_id):
                record = {
                    "table": image.page_id.table,
                    "number": image.page_id.number,
                    "version": image.version,
                    "capacity": image.page.capacity,
                    "slots": [list(r) if r is not None else None for r in image.page.slots],
                }
                fh.write(json.dumps(record))
                fh.write("\n")
        os.replace(temp, path)
        return len(self._images)

    @classmethod
    def load_from(cls, path: str, counters: Optional[Counters] = None) -> "StableStore":
        """Rebuild a stable store from a :meth:`save_to` file."""
        store = cls(counters)
        with open(path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    page_id = PageId(record["table"], record["number"])
                    page = Page(page_id, capacity=record["capacity"], version=record["version"])
                    for slot, row in enumerate(record["slots"]):
                        if row is not None:
                            page.put(slot, tuple(row))
                except (KeyError, ValueError, TypeError) as exc:
                    raise SchemaError(
                        f"corrupt checkpoint file {path} at line {line_no}: {exc}"
                    ) from exc
                store._images[page_id] = PageImage(page_id, page.version, page)
        return store


class FuzzyCheckpointer:
    """Walks a page store in rounds, flushing dirty-committed pages.

    ``dirty_filter`` lets the caller exclude pages with uncommitted
    modifications (the paper excludes written-but-not-committed pages);
    the engine passes a predicate backed by its lock table.
    """

    def __init__(
        self,
        store: PageStore,
        stable: StableStore,
        pages_per_round: int = 0,
    ) -> None:
        self.store = store
        self.stable = stable
        self.pages_per_round = pages_per_round  # 0 means "all pages each round"
        self._cursor: List[PageId] = []

    def checkpoint_round(self, skip_page) -> Tuple[int, int]:
        """Flush the next batch of pages.

        ``skip_page(page)`` returns True for pages that must not be flushed
        (uncommitted data).  Returns ``(flushed, skipped)``.
        """
        if not self._cursor:
            self._cursor = [page.page_id for page in self.store.all_pages()]
        batch_size = self.pages_per_round or len(self._cursor)
        batch, self._cursor = self._cursor[:batch_size], self._cursor[batch_size:]
        flushed = skipped = 0
        for page_id in batch:
            if not self.store.contains(page_id):
                continue
            page = self.store.get(page_id)
            if skip_page(page):
                skipped += 1
                continue
            previous = self.stable.load(page_id)
            if previous is not None and previous.version == page.version:
                continue  # unchanged since last checkpoint
            self.stable.flush_page(page)
            flushed += 1
        return flushed, skipped

    def full_checkpoint(self, skip_page) -> int:
        """Flush every eligible page once; returns pages flushed."""
        self._cursor = []
        total = 0
        while True:
            flushed, _skipped = self.checkpoint_round(skip_page)
            total += flushed
            if not self._cursor:
                return total
