"""Fuzzy checkpointing to per-node stable storage.

Each slave periodically walks its pages and persists ``(page image,
version)`` pairs; a flush of one page with its version is atomic, but the
checkpoint as a whole is *fuzzy*: it needs no quiescence and different
pages may be captured at different versions.  That is safe precisely
because Dynamic Multiversioning already tolerates pages at heterogeneous
versions — a recovering node asks a support slave only for pages *newer*
than its checkpointed versions.

``StableStore`` stands in for the node's local disk: it survives the loss
of the node's in-memory state (our failure injection wipes the
:class:`~repro.storage.page.PageStore` but keeps the stable store).

Durability hardening: every image carries a CRC32 checksum, and the store
keeps the *previous* good image of each page as a fallback generation.
:meth:`StableStore.recover_into` validates checksums on the restart path
and falls back to the previous generation when the current image is
corrupt; file persistence (:meth:`save_to`) publishes atomically via
rename and retains the prior file at ``<path>.prev`` so
:meth:`load_from` can fall back to the last good generation instead of
aborting recovery.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.counters import Counters
from repro.common.errors import CorruptCheckpoint
from repro.common.ids import PageId
from repro.storage.page import Page, PageStore


def _page_checksum(page: Page) -> int:
    payload = repr((str(page.page_id), page.version, tuple(page.slots)))
    return zlib.crc32(payload.encode("utf-8")) or 1


@dataclass
class PageImage:
    """An atomically flushed copy of one page plus its version."""

    page_id: PageId
    version: int
    page: Page  # snapshot, never aliased with the live page
    checksum: int = 0  # 0 = unchecked (legacy image); else CRC32 of content

    def verify(self) -> bool:
        """True if the image content matches its checksum (0 = always)."""
        if self.checksum == 0:
            return True
        return self.checksum == _page_checksum(self.page)


class StableStore:
    """Per-node durable page-image store (local-disk stand-in)."""

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self._images: Dict[PageId, PageImage] = {}
        self._previous: Dict[PageId, PageImage] = {}  # last good generation
        self.counters = counters if counters is not None else Counters()
        self.flushes = 0

    def flush_page(self, page: Page) -> None:
        """Atomically persist one page image with its current version.

        The image it replaces is retained as the page's previous
        generation, the fallback when the current image is later found
        corrupt on the recovery path.
        """
        snapshot = page.snapshot()
        current = self._images.get(page.page_id)
        if current is not None:
            self._previous[page.page_id] = current
        self._images[page.page_id] = PageImage(
            page.page_id, snapshot.version, snapshot, _page_checksum(snapshot)
        )
        self.flushes += 1
        self.counters.add("checkpoint.pages_flushed")
        self.counters.add("checkpoint.bytes", snapshot.byte_size())

    def load(self, page_id: PageId) -> Optional[PageImage]:
        return self._images.get(page_id)

    def version_map(self) -> Dict[PageId, int]:
        """Per-page checkpointed versions — the recovery handshake payload."""
        return {pid: image.version for pid, image in self._images.items()}

    def corrupt_page(self, page_id: PageId) -> bool:
        """Flip a bit in the current image of ``page_id`` (fault injection).

        Latent: only :meth:`recover_into` / checksum validation observes
        it.  Returns True if an image existed to corrupt.
        """
        image = self._images.get(page_id)
        if image is None:
            return False
        image.checksum = (image.checksum ^ 0xA5) or 1
        return True

    def restore_into(self, store: PageStore) -> int:
        """Rebuild a page store from the checkpoint (node restart path)."""
        count = 0
        for image in sorted(self._images.values(), key=lambda i: i.page_id):
            page = store.get_or_allocate(image.page_id)
            page.load_from(image.page)
            count += 1
        return count

    def recover_into(self, store: PageStore) -> Tuple[int, int, int]:
        """Checksum-validated restore with previous-generation fallback.

        For each page: a corrupt current image falls back to the previous
        good generation; if both generations are bad the page is skipped
        entirely (left unallocated/at version 0) so peer migration
        re-fetches it.  Returns ``(pages_restored, bytes_read,
        corrupt_pages)``.
        """
        restored = nbytes = corrupt = 0
        for page_id in sorted(self._images):
            image = self._images[page_id]
            if not image.verify():
                corrupt += 1
                self.counters.add("checkpoint.corrupt_pages")
                image = self._previous.get(page_id)
                if image is None or not image.verify():
                    continue  # both generations bad: migration re-fetches
                self.counters.add("checkpoint.fallback_pages")
            page = store.get_or_allocate(image.page_id)
            page.load_from(image.page)
            restored += 1
            nbytes += image.page.byte_size()
        return restored, nbytes, corrupt

    def __len__(self) -> int:
        return len(self._images)

    # -- file persistence (embedded-library durability) ---------------------------
    def save_to(self, path: str) -> int:
        """Persist every checkpointed page image to ``path`` (JSON lines).

        The publish is atomic rename-style: content is written to a temp
        file and renamed over the target, so a crash mid-save leaves the
        previous checkpoint intact.  The file it replaces is retained at
        ``<path>.prev`` as the last good generation for
        :meth:`load_from`'s corruption fallback.  Each line carries a CRC32
        of its payload.  Returns the number of pages written.
        """
        temp = f"{path}.tmp"
        with open(temp, "w", encoding="utf-8") as fh:
            for image in sorted(self._images.values(), key=lambda i: i.page_id):
                record = {
                    "table": image.page_id.table,
                    "number": image.page_id.number,
                    "version": image.version,
                    "capacity": image.page.capacity,
                    "slots": [list(r) if r is not None else None for r in image.page.slots],
                }
                payload = json.dumps(record, sort_keys=True)
                record["crc"] = zlib.crc32(payload.encode("utf-8"))
                fh.write(json.dumps(record))
                fh.write("\n")
        if os.path.exists(path):
            os.replace(path, f"{path}.prev")
        os.replace(temp, path)
        return len(self._images)

    @classmethod
    def load_from(cls, path: str, counters: Optional[Counters] = None) -> "StableStore":
        """Rebuild a stable store from a :meth:`save_to` file.

        A corrupt current file (bad JSON, missing fields, failed line CRC)
        falls back to the previous good generation at ``<path>.prev``;
        only when that too is missing or corrupt does the
        :class:`~repro.common.errors.CorruptCheckpoint` propagate.
        """
        try:
            return cls._load_file(path, counters)
        except CorruptCheckpoint:
            previous = f"{path}.prev"
            if not os.path.exists(previous):
                raise
            store = cls._load_file(previous, counters)
            store.counters.add("checkpoint.fallback_loads")
            return store

    @classmethod
    def _load_file(cls, path: str, counters: Optional[Counters] = None) -> "StableStore":
        store = cls(counters)
        with open(path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    crc = record.pop("crc", None)
                    if crc is not None:
                        payload = json.dumps(record, sort_keys=True)
                        if crc != zlib.crc32(payload.encode("utf-8")):
                            raise ValueError("line checksum mismatch")
                    page_id = PageId(record["table"], record["number"])
                    page = Page(page_id, capacity=record["capacity"], version=record["version"])
                    for slot, row in enumerate(record["slots"]):
                        if row is not None:
                            page.put(slot, tuple(row))
                except (KeyError, ValueError, TypeError) as exc:
                    raise CorruptCheckpoint(
                        f"corrupt checkpoint file {path} at line {line_no}: {exc}"
                    ) from exc
                store._images[page_id] = PageImage(
                    page_id, page.version, page, _page_checksum(page)
                )
        return store


class FuzzyCheckpointer:
    """Walks a page store in rounds, flushing dirty-committed pages.

    ``dirty_filter`` lets the caller exclude pages with uncommitted
    modifications (the paper excludes written-but-not-committed pages);
    the engine passes a predicate backed by its lock table.
    """

    def __init__(
        self,
        store: PageStore,
        stable: StableStore,
        pages_per_round: int = 0,
    ) -> None:
        self.store = store
        self.stable = stable
        self.pages_per_round = pages_per_round  # 0 means "all pages each round"
        self._cursor: List[PageId] = []

    def checkpoint_round(self, skip_page) -> Tuple[int, int]:
        """Flush the next batch of pages.

        ``skip_page(page)`` returns True for pages that must not be flushed
        (uncommitted data).  Returns ``(flushed, skipped)``.
        """
        if not self._cursor:
            self._cursor = [page.page_id for page in self.store.all_pages()]
        batch_size = self.pages_per_round or len(self._cursor)
        batch, self._cursor = self._cursor[:batch_size], self._cursor[batch_size:]
        flushed = skipped = 0
        for page_id in batch:
            if not self.store.contains(page_id):
                continue
            page = self.store.get(page_id)
            if skip_page(page):
                skipped += 1
                continue
            previous = self.stable.load(page_id)
            if previous is not None and previous.version == page.version:
                continue  # unchanged since last checkpoint
            self.stable.flush_page(page)
            flushed += 1
        return flushed, skipped

    def full_checkpoint(self, skip_page) -> int:
        """Flush every eligible page once; returns pages flushed."""
        self._cursor = []
        total = 0
        while True:
            flushed, _skipped = self.checkpoint_round(skip_page)
            total += flushed
            if not self._cursor:
                return total
