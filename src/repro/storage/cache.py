"""LRU model of a node's memory-resident page set.

The in-memory databases in the paper ``mmap`` an on-disk image: a page that
has not been touched recently may not be resident, and touching it costs a
page fault.  Failover Figures 4 and 7–9 are driven entirely by this effect
(cold vs warm backup buffer caches), so we model residency explicitly.

The cache tracks *which* pages are resident, not their contents — contents
always live in the :class:`~repro.storage.page.PageStore`; the simulation's
cost model charges a fault latency for every miss reported here.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.common.counters import Counters
from repro.common.ids import PageId


class PageCache:
    """LRU resident-set model with hit/miss accounting."""

    def __init__(self, capacity_pages: int, counters: Optional[Counters] = None) -> None:
        if capacity_pages < 1:
            raise ValueError("cache capacity must be >= 1 page")
        self.capacity_pages = capacity_pages
        self.counters = counters if counters is not None else Counters()
        self._lru: OrderedDict[PageId, None] = OrderedDict()

    def touch(self, page_id: PageId) -> bool:
        """Access a page; returns True on hit, False on (now-repaired) miss."""
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
            self.counters.add("cache.hits")
            return True
        self.counters.add("cache.misses")
        self._admit(page_id)
        return False

    def _admit(self, page_id: PageId) -> None:
        self._lru[page_id] = None
        while len(self._lru) > self.capacity_pages:
            self._lru.popitem(last=False)
            self.counters.add("cache.evictions")

    def resident(self, page_id: PageId) -> bool:
        return page_id in self._lru

    def warm(self, page_ids: Iterable[PageId]) -> int:
        """Pre-load pages without counting misses (backup warm-up path)."""
        count = 0
        for page_id in page_ids:
            if page_id not in self._lru:
                count += 1
            self._admit(page_id)
            self._lru.move_to_end(page_id)
        return count

    def invalidate_all(self) -> None:
        """Drop the whole resident set (node restart: cold cache)."""
        self._lru.clear()

    def hottest(self, limit: int) -> List[PageId]:
        """Most-recently-used page ids, hottest first (page-id shipping)."""
        return list(reversed(list(self._lru)))[:limit]

    def resident_count(self) -> int:
        return len(self._lru)

    def hit_ratio(self) -> float:
        hits = self.counters.get("cache.hits")
        misses = self.counters.get("cache.misses")
        total = hits + misses
        return hits / total if total else 0.0
