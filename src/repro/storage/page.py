"""Slotted row pages and the per-node page container.

Rows are immutable tuples; a page owns a fixed number of row slots.  Every
page carries ``version`` — the value of its table's entry in the database
version vector (``DBVersion``) at the time of the last modification applied
to the page.  Dynamic Multiversioning's lazy snapshot materialisation and
its version-aware page migration both key off this single integer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import SchemaError
from repro.common.ids import PageId

#: Default number of row slots per page.  The paper's pages are fixed-size
#: memory pages; 64 rows/page keeps page counts realistic at our scale.
ROWS_PER_PAGE = 64

Row = Tuple


class Page:
    """A fixed-capacity slotted page holding rows of one table."""

    __slots__ = ("page_id", "capacity", "slots", "version", "stamp", "live_rows", "_free_hint")

    def __init__(self, page_id: PageId, capacity: int = ROWS_PER_PAGE, version: int = 0) -> None:
        self.page_id = page_id
        self.capacity = capacity
        self.slots: List[Optional[Row]] = [None] * capacity
        self.version = version
        #: Monotonic mutation stamp, bumped on *every* content change —
        #: including uncommitted writes and undo reverts, unlike ``version``
        #: which only moves at commit stamping.  The OCC read path validates
        #: its read-set against this, so rolled-back writes still invalidate
        #: readers that saw them.
        self.stamp = 0
        self.live_rows = 0
        #: Lowest slot that could be free; every slot below it is occupied.
        #: Keeps hot insert pages from rescanning all slots per allocation.
        self._free_hint = 0

    # -- slot accessors ------------------------------------------------------
    def get(self, slot: int) -> Optional[Row]:
        return self.slots[slot]

    def put(self, slot: int, row: Optional[Row]) -> None:
        """Set a slot's contents, maintaining the live-row count."""
        self.stamp += 1
        before = self.slots[slot]
        if before is None and row is not None:
            self.live_rows += 1
        elif before is not None and row is None:
            self.live_rows -= 1
            if slot < self._free_hint:
                self._free_hint = slot
        self.slots[slot] = row

    def first_free_slot(self) -> Optional[int]:
        if self.live_rows >= self.capacity:
            return None
        slots = self.slots
        index = self._free_hint
        while index < self.capacity and slots[index] is not None:
            index += 1
        if index >= self.capacity:  # hint invariant broken externally: rescan
            index = 0
            while index < self.capacity and slots[index] is not None:
                index += 1
            if index >= self.capacity:
                return None
        self._free_hint = index
        return index

    def iter_live(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(slot, row)`` for every occupied slot."""
        for index, row in enumerate(self.slots):
            if row is not None:
                yield index, row

    @property
    def full(self) -> bool:
        return self.live_rows >= self.capacity

    # -- whole-page operations (migration / checkpoint) -----------------------
    def snapshot(self) -> "Page":
        """Deep-enough copy: rows are immutable tuples so slot copy suffices."""
        copy = Page(self.page_id, self.capacity, self.version)
        copy.slots = list(self.slots)
        copy.live_rows = self.live_rows
        return copy

    def load_from(self, other: "Page") -> None:
        """Overwrite this page's contents with another image of it."""
        if other.page_id != self.page_id:
            raise SchemaError(f"page image mismatch: {other.page_id} into {self.page_id}")
        self.capacity = other.capacity
        self.slots = list(other.slots)
        self.version = other.version
        self.stamp += 1  # contents changed: invalidate optimistic readers
        self.live_rows = other.live_rows
        self._free_hint = 0

    def byte_size(self) -> int:
        """Approximate wire size of the page (for network cost accounting)."""
        total = 16  # header
        for row in self.slots:
            if row is not None:
                total += 8 + sum(_field_size(field) for field in row)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page({self.page_id}, v{self.version}, {self.live_rows}/{self.capacity})"


def _field_size(value: object) -> int:
    if isinstance(value, str):
        return len(value) + 1
    if isinstance(value, float):
        return 8
    if value is None:
        return 1
    return 8  # ints and everything else


class PageStore:
    """All pages of one node, indexed by :class:`PageId`.

    One store per database replica.  Tables allocate pages through the
    store, so page numbering is dense per table, which the migration
    protocol relies on when comparing per-page versions.
    """

    def __init__(self, rows_per_page: int = ROWS_PER_PAGE) -> None:
        self.rows_per_page = rows_per_page
        self._pages: Dict[PageId, Page] = {}
        self._per_table: Dict[str, List[Page]] = {}

    def allocate(self, table: str) -> Page:
        """Create and register the next page of ``table``."""
        pages = self._per_table.setdefault(table, [])
        page = Page(PageId(table, len(pages)), self.rows_per_page)
        pages.append(page)
        self._pages[page.page_id] = page
        return page

    def get(self, page_id: PageId) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            raise SchemaError(f"no such page: {page_id}") from None

    def get_or_allocate(self, page_id: PageId) -> Page:
        """Fetch a page, allocating (densely) up to it if missing.

        Replicas applying write-sets may see operations for pages their
        local table has not grown yet; allocation is deterministic so the
        same page numbers exist on every replica.
        """
        while page_id not in self._pages:
            self.allocate(page_id.table)
        return self._pages[page_id]

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def pages_of(self, table: str) -> List[Page]:
        return self._per_table.get(table, [])

    def tables(self) -> List[str]:
        return sorted(self._per_table)

    def all_pages(self) -> Iterator[Page]:
        for table in sorted(self._per_table):
            yield from self._per_table[table]

    def page_count(self) -> int:
        return len(self._pages)

    def version_map(self) -> Dict[PageId, int]:
        """Current ``page -> version`` map (the migration handshake payload)."""
        return {page_id: page.version for page_id, page in self._pages.items()}

    def total_bytes(self) -> int:
        return sum(page.byte_size() for page in self._pages.values())

    def clear(self) -> None:
        """Drop all pages (models a node whose memory contents were lost)."""
        self._pages.clear()
        self._per_table.clear()
