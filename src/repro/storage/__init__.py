"""Page-granular storage substrate.

The paper replicates *physical memory modifications* at page granularity:
the unit of concurrency control, replication and migration is the memory
page.  This package provides:

* :class:`Page` / :class:`PageStore` — slotted row pages and their container,
* :class:`PageOp` and friends — the per-page modification encodings that
  make up write-sets, redo logs and migration payloads,
* :class:`PageCache` — an LRU model of which pages are memory-resident on a
  node (drives the buffer-cache warm-up effects in Figures 4 and 7–9),
* :class:`FuzzyCheckpointer` / :class:`StableStore` — the non-quiescent
  checkpoint used to bound data-migration work when stale nodes rejoin.
"""

from repro.storage.page import Page, PageStore, ROWS_PER_PAGE
from repro.storage.ops import OpKind, PageOp, apply_op, encoded_size
from repro.storage.cache import PageCache
from repro.storage.checkpoint import FuzzyCheckpointer, PageImage, StableStore

__all__ = [
    "Page",
    "PageStore",
    "ROWS_PER_PAGE",
    "PageOp",
    "OpKind",
    "apply_op",
    "encoded_size",
    "PageCache",
    "StableStore",
    "PageImage",
    "FuzzyCheckpointer",
]
