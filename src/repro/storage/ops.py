"""Per-page physical modification encodings.

A :class:`PageOp` describes one slot-level change to one page — the unit
the master's redo log, the replicated write-sets and the slave's pending
modification queues are all made of.  Applying the same ordered sequence of
ops to the same starting page image is deterministic, which is what makes
lazy per-page application on slaves equivalent to eager application.

UPDATE ops are *delta-encoded* on the replication fast path: instead of the
full before/after row images they carry a changed-column bitmap, the new
values of exactly those columns, and the before-images of just the
index-relevant columns slaves need for eager index maintenance.  Applying a
delta op reconstructs the after-image from the slot's current contents,
which is correct because ops are applied in version order from the same
base image on every replica.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.common.errors import SchemaError
from repro.common.ids import PageId
from repro.storage.page import Page, Row, _field_size

#: Encode-work instrumentation: how many times op / write-set wire sizes
#: were actually *computed* (cache misses).  Tests assert memoization by
#: snapshotting these around a broadcast.
ENCODE_STATS: Dict[str, int] = {"op_sizes": 0, "writeset_sizes": 0}


class OpKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class PageOp:
    """One slot-level modification of one page.

    ``before`` carries the prior row image for full-image UPDATE/DELETE
    ops.  Slaves need it to maintain their version-aware indexes eagerly
    while the page itself is applied lazily (they cannot read the pre-image
    from a page that may still have earlier pending ops queued).

    A *delta* UPDATE (``row is None``, ``delta is not None``) replaces both
    images: ``delta_mask`` is a bitmap of changed column positions,
    ``delta`` holds the new values of those columns in ascending position
    order, and ``index_before`` holds ``(position, before_value)`` pairs
    covering every column of every index touched by the change.
    """

    page_id: PageId
    kind: OpKind
    slot: int
    row: Optional[Row] = None  # new row image; None for DELETE and deltas
    before: Optional[Row] = None  # prior row image; None for INSERT and deltas
    delta_mask: int = 0
    delta: Optional[Tuple] = None
    index_before: Optional[Tuple] = None

    @property
    def is_delta(self) -> bool:
        return self.delta is not None

    def delta_items(self) -> Tuple[Tuple[int, object], ...]:
        """``(position, new_value)`` pairs of a delta op, ascending."""
        cached = self.__dict__.get("_delta_items")
        if cached is None:
            cached = tuple(zip(_mask_positions(self.delta_mask), self.delta or ()))
            object.__setattr__(self, "_delta_items", cached)
        return cached

    def apply_delta(self, base: Row) -> Row:
        """After-image of ``base`` under this delta op."""
        out = list(base)
        for position, value in self.delta_items():
            out[position] = value
        return tuple(out)

    def inverse(self, before: Optional[Row]) -> "PageOp":
        """The undo record for this op given the slot's prior contents."""
        if self.kind is OpKind.INSERT:
            return PageOp(self.page_id, OpKind.DELETE, self.slot, None)
        if self.kind is OpKind.DELETE:
            return PageOp(self.page_id, OpKind.INSERT, self.slot, before)
        return PageOp(self.page_id, OpKind.UPDATE, self.slot, before)


def _mask_positions(mask: int) -> Tuple[int, ...]:
    positions = []
    position = 0
    while mask:
        if mask & 1:
            positions.append(position)
        mask >>= 1
        position += 1
    return tuple(positions)


def delta_update_op(
    page_id: PageId,
    slot: int,
    before: Row,
    after: Row,
    index_positions: Iterable[Sequence[int]] = (),
) -> PageOp:
    """Build a delta-encoded UPDATE op from full before/after images.

    ``index_positions`` lists, per secondary index, the column positions
    that index covers; the op ships before-values for every column of every
    index that has at least one changed column (the slave reconstructs old
    and new index keys from them without the full pre-image).
    """
    mask = 0
    for position, (old, new) in enumerate(zip(before, after)):
        if old != new:
            mask |= 1 << position
    delta = tuple(after[p] for p in _mask_positions(mask))
    needed = set()
    for positions in index_positions:
        if any((mask >> p) & 1 for p in positions):
            needed.update(positions)
    idx_before = tuple(sorted((p, before[p]) for p in needed))
    op = PageOp(
        page_id, OpKind.UPDATE, slot,
        delta_mask=mask, delta=delta, index_before=idx_before,
    )
    # Stash what the op would have cost as a full before+after image, so
    # the cluster layers can report bytes saved by delta encoding.
    full = 24 + sum(_field_size(f) for f in after) + sum(_field_size(f) for f in before)
    object.__setattr__(op, "_full_size", full)
    return op


def apply_op(page: Page, op: PageOp) -> None:
    """Apply one modification to a page image (does not touch versions)."""
    if op.page_id != page.page_id:
        raise SchemaError(f"op for {op.page_id} applied to {page.page_id}")
    if op.kind is OpKind.DELETE:
        page.put(op.slot, None)
    elif op.is_delta:
        base = page.get(op.slot)
        if base is None:
            raise SchemaError(f"delta update of empty slot {op.slot} on {page.page_id}")
        page.put(op.slot, op.apply_delta(base))
    else:
        if op.row is None:
            raise SchemaError(f"{op.kind.value} op without a row image")
        page.put(op.slot, op.row)


def apply_ops(page: Page, ops: Iterable[PageOp]) -> int:
    """Apply an ordered batch of ops; returns how many were applied."""
    count = 0
    for op in ops:
        apply_op(page, op)
        count += 1
    return count


def encoded_size(op: PageOp) -> int:
    """Wire size of one op in bytes (computed once, cached on the op)."""
    cached = op.__dict__.get("_encoded_size")
    if cached is None:
        cached = _compute_encoded_size(op)
        object.__setattr__(op, "_encoded_size", cached)
    return cached


def _compute_encoded_size(op: PageOp) -> int:
    ENCODE_STATS["op_sizes"] += 1
    base = 24  # page id, kind, slot, framing
    if op.row is not None:
        base += sum(_field_size(field) for field in op.row)
    if op.before is not None:
        base += sum(_field_size(field) for field in op.before)
    if op.is_delta:
        base += 8  # changed-column bitmap
        base += sum(_field_size(value) for value in op.delta)
        base += sum(2 + _field_size(value) for _p, value in op.index_before or ())
    return base


def bytes_saved(op: PageOp) -> int:
    """Bytes delta encoding shaved off this op vs full before/after images."""
    full = op.__dict__.get("_full_size")
    return full - encoded_size(op) if full is not None else 0


def ops_size(ops: Iterable[PageOp]) -> int:
    return sum(encoded_size(op) for op in ops)


def touched_pages(ops: Iterable[PageOp]) -> Tuple[PageId, ...]:
    """Distinct pages touched, in first-touch order."""
    seen = {}
    for op in ops:
        seen.setdefault(op.page_id, None)
    return tuple(seen)
