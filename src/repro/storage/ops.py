"""Per-page physical modification encodings.

A :class:`PageOp` describes one slot-level change to one page — the unit
the master's redo log, the replicated write-sets and the slave's pending
modification queues are all made of.  Applying the same ordered sequence of
ops to the same starting page image is deterministic, which is what makes
lazy per-page application on slaves equivalent to eager application.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.common.errors import SchemaError
from repro.common.ids import PageId
from repro.storage.page import Page, Row, _field_size


class OpKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class PageOp:
    """One slot-level modification of one page.

    ``before`` carries the prior row image for UPDATE/DELETE ops.  Slaves
    need it to maintain their version-aware indexes eagerly while the page
    itself is applied lazily (they cannot read the pre-image from a page
    that may still have earlier pending ops queued).
    """

    page_id: PageId
    kind: OpKind
    slot: int
    row: Optional[Row] = None  # new row image; None for DELETE
    before: Optional[Row] = None  # prior row image; None for INSERT

    def inverse(self, before: Optional[Row]) -> "PageOp":
        """The undo record for this op given the slot's prior contents."""
        if self.kind is OpKind.INSERT:
            return PageOp(self.page_id, OpKind.DELETE, self.slot, None)
        if self.kind is OpKind.DELETE:
            return PageOp(self.page_id, OpKind.INSERT, self.slot, before)
        return PageOp(self.page_id, OpKind.UPDATE, self.slot, before)


def apply_op(page: Page, op: PageOp) -> None:
    """Apply one modification to a page image (does not touch versions)."""
    if op.page_id != page.page_id:
        raise SchemaError(f"op for {op.page_id} applied to {page.page_id}")
    if op.kind is OpKind.DELETE:
        page.put(op.slot, None)
    else:
        if op.row is None:
            raise SchemaError(f"{op.kind.value} op without a row image")
        page.put(op.slot, op.row)


def apply_ops(page: Page, ops: Iterable[PageOp]) -> int:
    """Apply an ordered batch of ops; returns how many were applied."""
    count = 0
    for op in ops:
        apply_op(page, op)
        count += 1
    return count


def encoded_size(op: PageOp) -> int:
    """Approximate wire size of one op in bytes (for network accounting)."""
    base = 24  # page id, kind, slot, framing
    if op.row is not None:
        base += sum(_field_size(field) for field in op.row)
    if op.before is not None:
        base += sum(_field_size(field) for field in op.before)
    return base


def ops_size(ops: Iterable[PageOp]) -> int:
    return sum(encoded_size(op) for op in ops)


def touched_pages(ops: Iterable[PageOp]) -> Tuple[PageId, ...]:
    """Distinct pages touched, in first-touch order."""
    seen = {}
    for op in ops:
        seen.setdefault(op.page_id, None)
    return tuple(seen)
