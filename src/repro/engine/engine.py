"""The heap engine: transactions, commit protocol hooks, access control.

One :class:`HeapEngine` instance is one database replica's storage manager.
Concurrency personalities plug in through :class:`AccessController`:

* :class:`PassThroughController` — no concurrency control (single-user
  embedded usage and unit tests),
* :class:`TwoPhaseLocking` — page-granular S/X 2PL, used by DMV masters and
  by the on-disk baseline (where it models InnoDB's serializable mode),
* ``SlaveController`` (in :mod:`repro.core.slave`) — lazy version
  materialisation for DMV slaves.

The commit path is split so the replication layer can interpose: masters
call :meth:`prepare_commit` (collect the write-set, keep locks), broadcast,
then :meth:`stamp_commit` + :meth:`finish_commit`.  Stand-alone users call
:meth:`commit`, which performs all three with a locally incremented version
vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.counters import Counters
from repro.common.errors import SchemaError, TransactionAborted
from repro.common.ids import IdAllocator, TxnId
from repro.common.versions import VersionVector
from repro.engine.locks import LockManager, LockMode, LockRequest
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.engine.txn import Savepoint, Transaction, TxnMode, TxnState
from repro.storage.cache import PageCache
from repro.storage.ops import PageOp
from repro.storage.page import Page, PageStore


class LockWait(Exception):
    """Internal control-flow: a lock could not be granted immediately.

    The simulated node executor catches this, rolls the statement back to
    its savepoint, waits for the grant and retries the statement.  It is
    *not* a :class:`~repro.common.errors.ReproError`: it must never escape
    to application code.
    """

    def __init__(self, request: LockRequest) -> None:
        super().__init__(f"txn {request.txn_id} waits for {request.mode.value} on {request.resource}")
        self.request = request


class AccessController:
    """Strategy hooks called around every page access and txn boundary."""

    #: Whether this controller's engine emits the OCC-era counters
    #: (``engine.occ_*``, ``engine.plan_cache_hits``, ...).  Only the
    #: optimistic personality sets this: legacy-mode counter fingerprints
    #: must stay bit-for-bit identical to the pre-OCC engine.
    emits_occ_counters = False

    def attach(self, engine: "HeapEngine") -> None:
        self.engine = engine

    def on_begin(self, txn: Transaction) -> None:  # pragma: no cover - default no-op
        pass

    def before_read(self, txn: Transaction, page: Page) -> None:
        pass

    def before_write(self, txn: Transaction, page: Page) -> None:
        pass

    def before_prepare(self, txn: Transaction) -> None:
        """Last chance to veto a commit (OCC read-set validation).

        Called by :meth:`HeapEngine.prepare_commit` while the transaction is
        still ACTIVE; raising :class:`TransactionAborted` here leaves the
        transaction fully revertible.
        """

    def on_finish(self, txn: Transaction) -> None:
        """Called after commit completes or abort finishes."""

    def page_is_dirty(self, page: Page) -> bool:
        """Does the page hold uncommitted data?  (checkpointer filter)"""
        return False

    def write_locked_by_other(self, txn: Transaction, page: Page) -> bool:
        """Would writing ``page`` block on another transaction's X lock?

        Used by the insert-stripe allocator to steer concurrent inserters
        onto different pages.
        """
        return False


class PassThroughController(AccessController):
    """No concurrency control: suitable for single-transaction usage."""


class TwoPhaseLocking(AccessController):
    """Strict page-granular 2PL: S on read, X on write, release at finish."""

    def __init__(self, manager: Optional[LockManager] = None) -> None:
        self.manager = manager if manager is not None else LockManager()

    def _acquire(self, txn: Transaction, page: Page, mode: LockMode) -> None:
        request = self.manager.acquire(txn.txn_id, page.page_id, mode)
        if not request.granted:
            self.engine.counters.add("locks.waits")
            raise LockWait(request)

    def before_read(self, txn: Transaction, page: Page) -> None:
        if page.page_id.table in txn.write_intent:
            # Read of a table this txn declared it will write: take X now
            # (SELECT FOR UPDATE semantics) instead of upgrading later.
            self._acquire(txn, page, LockMode.EXCLUSIVE)
        else:
            self._acquire(txn, page, LockMode.SHARED)

    def before_write(self, txn: Transaction, page: Page) -> None:
        self._acquire(txn, page, LockMode.EXCLUSIVE)

    def on_finish(self, txn: Transaction) -> None:
        self.manager.release_all(txn.txn_id)

    def page_is_dirty(self, page: Page) -> bool:
        return self.manager.exclusively_locked(page.page_id)

    def write_locked_by_other(self, txn: Transaction, page: Page) -> bool:
        holders = self.manager.holders_of(page.page_id)
        return any(holder != txn.txn_id for holder in holders)


class OccReadValidation(AccessController):
    """Timestamp-ordered optimistic reads; writers keep page X locks.

    Readers never latch: :meth:`before_read` records the page's mutation
    stamp into the transaction's read-set (``txn.read_stamps``) on first
    touch.  :meth:`before_prepare` performs backward validation — the
    transaction commits only if every optimistically read page is unchanged
    since it was read *and* not exclusively locked by a concurrent writer;
    otherwise it aborts with reason ``occ-conflict`` and the driver retries.

    Writes are unchanged from 2PL: X locks, held to commit.  That keeps
    write-write conflicts, the insert-stripe allocator, the dirty-page
    checkpoint filter, and — crucially — the version-vector serialization
    order the replication layer broadcasts in, all identical to the locking
    engine.  Validation happens synchronously inside ``pre_commit``, so the
    commit (= validation) order *is* the version order.

    The stamp is bumped by every ``Page.put`` — including uncommitted
    writes and undo reverts — so a reader that observed another writer's
    in-place update aborts whether that writer commits (no further puts,
    but then it still holds X at our validation) or rolls back (the revert
    bumps the stamp).  Pages the transaction itself writes leave the
    read-set at X-acquisition time, after an early stamp check; from then
    on the lock, not the stamp, protects them.
    """

    emits_occ_counters = True

    def __init__(self, manager: Optional[LockManager] = None) -> None:
        self.manager = manager if manager is not None else LockManager()

    def _acquire_x(self, txn: Transaction, page: Page) -> None:
        manager = self.manager
        fast = manager.fast_grants
        request = manager.acquire(txn.txn_id, page.page_id, LockMode.EXCLUSIVE)
        counters = self.engine.counters
        if manager.fast_grants != fast:
            counters.add("engine.lock_fast_grants")
        if not request.granted:
            counters.add("locks.waits")
            raise LockWait(request)
        # The page is now lock-protected; retire any optimistic read of it,
        # aborting if it changed between the read and this X grant (the
        # stamp would otherwise be invalidated by our own writes).
        stamp = txn.read_stamps.pop(page.page_id, None)
        if stamp is not None and page.stamp != stamp:
            counters.add("engine.occ_aborts")
            raise TransactionAborted(
                f"txn {txn.txn_id} page {page.page_id} changed between read and write",
                reason="occ-conflict",
            )

    def before_read(self, txn: Transaction, page: Page) -> None:
        if page.page_id.table in txn.write_intent:
            # Declared read-modify-write: take X up front, exactly like the
            # 2PL controller (avoids upgrade deadlocks and self-invalidation).
            self._acquire_x(txn, page)
        else:
            txn.read_stamps.setdefault(page.page_id, page.stamp)

    def before_write(self, txn: Transaction, page: Page) -> None:
        self._acquire_x(txn, page)

    def before_prepare(self, txn: Transaction) -> None:
        self.engine.counters.add("engine.occ_validations")
        read_stamps = txn.read_stamps
        if not read_stamps:
            return
        store = self.engine.store
        manager = self.manager
        for page_id, stamp in read_stamps.items():
            page = store.get(page_id)
            if page.stamp != stamp or manager.exclusively_locked_by_other(
                page_id, txn.txn_id
            ):
                self.engine.counters.add("engine.occ_aborts")
                raise TransactionAborted(
                    f"txn {txn.txn_id} read-set validation failed on {page_id}",
                    reason="occ-conflict",
                )

    def on_finish(self, txn: Transaction) -> None:
        self.manager.release_all(txn.txn_id)

    def page_is_dirty(self, page: Page) -> bool:
        return self.manager.exclusively_locked(page.page_id)

    def write_locked_by_other(self, txn: Transaction, page: Page) -> bool:
        holders = self.manager.holders_of(page.page_id)
        return any(holder != txn.txn_id for holder in holders)


#: Valid values for the ``read_concurrency`` configuration knob.
READ_CONCURRENCY_MODES = ("occ", "2pl")


def make_update_controller(
    read_concurrency: str = "occ", manager: Optional[LockManager] = None
) -> AccessController:
    """Build the update-path concurrency controller for a master engine."""
    if read_concurrency == "occ":
        return OccReadValidation(manager)
    if read_concurrency == "2pl":
        return TwoPhaseLocking(manager)
    raise ValueError(
        f"unknown read_concurrency {read_concurrency!r}; expected one of "
        f"{READ_CONCURRENCY_MODES}"
    )


class HeapEngine:
    """A transactional in-memory database instance (one replica)."""

    def __init__(
        self,
        controller: Optional[AccessController] = None,
        counters: Optional[Counters] = None,
        store: Optional[PageStore] = None,
        cache: Optional[PageCache] = None,
        rows_per_page: int = 64,
        name: str = "engine",
    ) -> None:
        self.name = name
        self.counters = counters if counters is not None else Counters()
        self.store = store if store is not None else PageStore(rows_per_page)
        self.cache = cache  # optional residency model; None = always resident
        self.controller = controller if controller is not None else PassThroughController()
        self.controller.attach(self)
        self.tables: Dict[str, Table] = {}
        self.versions = VersionVector()
        self._txn_ids = IdAllocator()
        self._active: Dict[TxnId, Transaction] = {}

    # -- schema -----------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise SchemaError(f"table {schema.name} already exists")
        table = Table(schema, self)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name}") from None

    # -- transaction lifecycle -----------------------------------------------------
    def begin(
        self,
        mode: TxnMode = TxnMode.UPDATE,
        tag: Optional[VersionVector] = None,
        write_intent: Optional[Iterable[str]] = None,
    ) -> Transaction:
        txn = Transaction(
            self._txn_ids.next(), mode, tag=tag,
            write_intent=set(write_intent) if write_intent else set(),
        )
        self._active[txn.txn_id] = txn
        self.controller.on_begin(txn)
        self.counters.add("engine.txns_started")
        return txn

    def prepare_commit(self, txn: Transaction) -> List[PageOp]:
        """Freeze the write-set; locks stay held until :meth:`finish_commit`.

        The controller may veto here (OCC read-set validation) by raising
        :class:`TransactionAborted`; the transaction is then still ACTIVE
        and fully revertible via :meth:`abort`.
        """
        txn.require_active()
        self.controller.before_prepare(txn)
        txn.state = TxnState.PREPARED
        return list(txn.redo)

    def stamp_commit(self, txn: Transaction, versions: Dict[str, int]) -> None:
        """Stamp index entries and page versions with the commit versions."""
        if txn.state is not TxnState.PREPARED:
            raise RuntimeError("stamp_commit requires a prepared transaction")
        per_table: Dict[str, list] = {}
        for record in txn.journal:
            per_table.setdefault(record.table, []).append(record)
        for table_name, records in per_table.items():
            version = versions.get(table_name)
            if version is None:
                raise SchemaError(f"missing commit version for table {table_name}")
            self.table(table_name).stamp_commit(records, version)
        for op in txn.redo:
            page = self.store.get(op.page_id)
            page.version = max(page.version, versions[op.page_id.table])

    def finish_commit(self, txn: Transaction) -> None:
        if txn.state is not TxnState.PREPARED:
            raise RuntimeError("finish_commit requires a prepared transaction")
        txn.state = TxnState.COMMITTED
        self._active.pop(txn.txn_id, None)
        self.controller.on_finish(txn)
        self.counters.add("engine.txns_committed")

    def commit(self, txn: Transaction) -> Dict[str, int]:
        """Stand-alone commit: local version increment, stamp, finish.

        Returns the per-table commit versions.  Replicated masters use the
        prepare/stamp/finish steps individually instead.
        """
        self.prepare_commit(txn)
        self.versions.increment(txn.tables_written)
        commit_versions = {t: self.versions.get(t) for t in txn.tables_written}
        self.stamp_commit(txn, commit_versions)
        self.finish_commit(txn)
        return commit_versions

    def abort(self, txn: Transaction, reason: str = "abort") -> None:
        """Roll back all effects and release resources (idempotent-safe).

        A PREPARED transaction cannot be reverted — its index entries are
        already stamped with commit versions and its write-set may be
        partially broadcast.  That situation only arises when the node
        itself is failing (the cluster-level discard protocol cleans the
        replicas); locally we just drop the transaction and release its
        locks without touching data.
        """
        if txn.state is TxnState.COMMITTED:
            return
        if txn.state is TxnState.ABORTED:
            # Defensive re-release: a statement racing with the abort may
            # have acquired locks after the first release.
            self.controller.on_finish(txn)
            return
        if txn.state is TxnState.PREPARED:
            txn.state = TxnState.ABORTED
            self._active.pop(txn.txn_id, None)
            self.controller.on_finish(txn)
            self.counters.add("engine.txns_dropped_prepared")
            return
        for record in reversed(txn.journal):
            self.table(record.table).revert(record)
        txn.journal.clear()
        txn.redo.clear()
        txn.state = TxnState.ABORTED
        self._active.pop(txn.txn_id, None)
        self.controller.on_finish(txn)
        self.counters.add("engine.txns_aborted")
        self.counters.add(f"engine.aborts.{reason}")

    def rollback_to(self, txn: Transaction, savepoint: Savepoint) -> None:
        """Statement-level rollback (used for lock-wait retries)."""
        txn.require_active()
        for record in txn.truncate_to(savepoint):
            self.table(record.table).revert(record)

    def active_transactions(self) -> List[Transaction]:
        return list(self._active.values())

    def abort_all_active(self, reason: str = "node-failure") -> int:
        """Abort every in-flight transaction (failure reconfiguration)."""
        txns = list(self._active.values())
        for txn in txns:
            self.abort(txn, reason=reason)
        return len(txns)

    # -- page access funnels --------------------------------------------------------
    def touch_read(self, txn: Transaction, page: Page) -> None:
        if not txn.active:
            # A statement may still be executing when its transaction is
            # aborted out from under it (node reconfiguration).  Stop it at
            # the next page access — before it acquires any more locks.
            raise TransactionAborted(
                f"txn {txn.txn_id} is no longer active", reason="txn-inactive"
            )
        if self.cache is not None:
            self.cache.touch(page.page_id)
        self.controller.before_read(txn, page)
        txn.pages_read.add(page.page_id)
        self.counters.add("engine.pages_read")

    def touch_write(self, txn: Transaction, page: Page) -> None:
        if not txn.active:
            raise TransactionAborted(
                f"txn {txn.txn_id} is no longer active", reason="txn-inactive"
            )
        if txn.read_only:
            raise TransactionAborted(
                f"read-only txn {txn.txn_id} attempted a write", reason="read-only-write"
            )
        if self.cache is not None:
            self.cache.touch(page.page_id)
        self.controller.before_write(txn, page)
        self.counters.add("engine.pages_written")

    # -- convenience row APIs (delegate to tables) -------------------------------------
    def insert(self, txn: Transaction, table: str, values: Dict[str, object]):
        return self.table(table).insert_row(txn, values)

    def fetch(self, txn: Transaction, table: str, loc):
        return self.table(table).fetch(txn, loc)

    def page_is_dirty(self, page: Page) -> bool:
        return self.controller.page_is_dirty(page)

    # -- role changes / loading -----------------------------------------------------------
    def set_controller(self, controller: AccessController) -> None:
        """Swap the concurrency personality (slave promotion to master)."""
        if self._active:
            raise RuntimeError("cannot swap controller with active transactions")
        self.controller = controller
        controller.attach(self)

    def bulk_load(self, table: str, rows, version: int = 0) -> int:
        """Load committed rows directly (initial population, migrations)."""
        return self.table(table).bulk_load(rows, version)

    def rebuild_all_indexes(self) -> None:
        for table in self.tables.values():
            table.rebuild_indexes()

    # -- maintenance -------------------------------------------------------------------
    def gc_index_entries(self, watermark_versions: VersionVector) -> int:
        """GC versioned index entries below the oldest tag still in use."""
        removed = 0
        for table in self.tables.values():
            removed += table.gc_index_entries(watermark_versions.get(table.name))
        return removed

    def row_counts(self) -> Dict[str, int]:
        return {name: table.row_count for name, table in self.tables.items()}
