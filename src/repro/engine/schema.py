"""Table schemas: columns, types, keys and index definitions.

Rows are stored as plain tuples ordered by the schema's column list; the
schema converts between dict and tuple forms and validates types on the
write path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SchemaError

#: Supported column types.  ``datetime`` values are stored as float epochs.
COLUMN_TYPES = ("int", "float", "str")

_PYTHON_TYPES = {"int": int, "float": (int, float), "str": str}


@dataclass(frozen=True)
class Column:
    """One column: a name plus a declared type."""

    name: str
    type: str = "str"
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise SchemaError(f"unknown column type {self.type!r} for {self.name!r}")

    def check(self, value: object) -> object:
        """Validate (and normalise) one value for this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name} is NOT NULL")
            return None
        expected = _PYTHON_TYPES[self.type]
        if isinstance(value, bool) or not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name} expects {self.type}, got {type(value).__name__}"
            )
        if self.type == "float":
            return float(value)
        return value


@dataclass(frozen=True)
class IndexDef:
    """A secondary index over one or more columns."""

    name: str
    columns: Tuple[str, ...]
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"index {self.name} has no columns")


@dataclass
class TableSchema:
    """Schema of one table: ordered columns, primary key, secondary indexes."""

    name: str
    columns: List[Column]
    primary_key: Tuple[str, ...]
    indexes: List[IndexDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name} has no columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name} has duplicate columns")
        self._positions: Dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}
        for col in self.primary_key:
            if col not in self._positions:
                raise SchemaError(f"primary key column {col} not in table {self.name}")
        if not self.primary_key:
            raise SchemaError(f"table {self.name} needs a primary key")
        seen_idx = set()
        for index in self.indexes:
            if index.name in seen_idx:
                raise SchemaError(f"duplicate index {index.name} on {self.name}")
            seen_idx.add(index.name)
            for col in index.columns:
                if col not in self._positions:
                    raise SchemaError(f"index {index.name} references unknown column {col}")

    # -- column helpers ------------------------------------------------------
    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise SchemaError(f"no column {column!r} in table {self.name}") from None

    def has_column(self, column: str) -> bool:
        return column in self._positions

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    # -- row conversions -----------------------------------------------------
    def row_from_dict(self, values: Dict[str, object]) -> Tuple:
        """Build a validated row tuple; missing columns become NULL."""
        unknown = set(values) - set(self._positions)
        if unknown:
            raise SchemaError(f"unknown columns for {self.name}: {sorted(unknown)}")
        return tuple(
            col.check(values.get(col.name)) for col in self.columns
        )

    def row_to_dict(self, row: Sequence) -> Dict[str, object]:
        return {col.name: row[i] for i, col in enumerate(self.columns)}

    def updated_row(self, row: Sequence, changes: Dict[str, object]) -> Tuple:
        """Copy of ``row`` with ``changes`` applied (validated)."""
        out = list(row)
        for name, value in changes.items():
            position = self.position(name)
            out[position] = self.columns[position].check(value)
        return tuple(out)

    # -- keys ------------------------------------------------------------------
    def key_of(self, row: Sequence, columns: Sequence[str]) -> Tuple:
        return tuple(row[self.position(c)] for c in columns)

    def pk_of(self, row: Sequence) -> Tuple:
        return self.key_of(row, self.primary_key)

    def index_by_name(self, name: str) -> Optional[IndexDef]:
        for index in self.indexes:
            if index.name == name:
                return index
        return None
