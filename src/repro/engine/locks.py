"""Page-granular lock manager with deadlock detection.

Masters (and the on-disk baseline engine) serialize conflicting update
transactions with two-phase locking at page granularity — the paper's
"internal two-phase-locking per-page concurrency control".

The manager is synchronous: :meth:`LockManager.acquire` either grants
immediately or returns a queued :class:`LockRequest`.  Callers that can
suspend (the simulated node executor) wait for the request's grant
callback; callers that cannot must treat an ungranted request as a
would-block condition.  Deadlocks are detected eagerly on enqueue via a
wait-for graph cycle check, and the *requester* is chosen as victim.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Set

from repro.common.errors import DeadlockDetected
from repro.common.ids import TxnId


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(requested: LockMode, held: LockMode) -> bool:
    return requested is LockMode.SHARED and held is LockMode.SHARED


class LockRequest:
    """One acquisition attempt; doubles as the grant notification handle."""

    __slots__ = ("txn_id", "resource", "mode", "granted", "_callbacks")

    def __init__(self, txn_id: TxnId, resource: Hashable, mode: LockMode) -> None:
        self.txn_id = txn_id
        self.resource = resource
        self.mode = mode
        self.granted = False
        self._callbacks: List[Callable[["LockRequest"], None]] = []

    def on_grant(self, fn: Callable[["LockRequest"], None]) -> None:
        if self.granted:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _grant(self) -> None:
        self.granted = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _LockState:
    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: Dict[TxnId, LockMode] = {}
        self.queue: Deque[LockRequest] = deque()


def _make_fast_grant() -> LockRequest:
    request = LockRequest(-1, None, LockMode.SHARED)
    request.granted = True
    return request


#: Shared pre-granted request returned for immediate grants.  Callers only
#: ever check ``granted`` / register ``on_grant`` on granted requests (both
#: behave identically on the singleton), so no per-grant allocation is needed.
FAST_GRANT: LockRequest = _make_fast_grant()


class LockManager:
    """S/X locks over arbitrary hashable resources (pages, here)."""

    def __init__(self) -> None:
        self._states: Dict[Hashable, _LockState] = {}
        # Insertion-ordered (dict-as-set): release/promote order must not
        # depend on hash randomization or replayed runs diverge.
        self._held_by_txn: Dict[TxnId, Dict[Hashable, None]] = {}
        #: Count of queued (not yet granted) requests per transaction; lets
        #: ``release_all`` skip the all-states purge scan in the common case.
        self._queued_by_txn: Dict[TxnId, int] = {}
        self.grants = 0
        self.waits = 0
        self.deadlocks = 0
        #: Immediate grants on previously unlocked resources, served without
        #: allocating a :class:`LockRequest`.  Plain attribute (not a
        #: ``Counters`` entry) so legacy fingerprints are unaffected; the OCC
        #: controller surfaces it as ``engine.lock_fast_grants``.
        self.fast_grants = 0

    # -- acquisition -----------------------------------------------------------
    def acquire(self, txn_id: TxnId, resource: Hashable, mode: LockMode) -> LockRequest:
        """Request ``mode`` on ``resource``; may grant immediately or queue.

        Raises :class:`DeadlockDetected` (victim = requester) if queuing the
        request would close a wait-for cycle.
        """
        state = self._states.get(resource)
        if state is None or (not state.holders and not state.queue):
            # Uncontended: grant without allocating a request object.
            if state is None:
                state = self._states[resource] = _LockState()
            state.holders[txn_id] = mode
            self._held_by_txn.setdefault(txn_id, {})[resource] = None
            self.grants += 1
            self.fast_grants += 1
            return FAST_GRANT

        held = state.holders.get(txn_id)
        if held is not None and (held is mode or held is LockMode.EXCLUSIVE):
            return FAST_GRANT  # reentrant or already-stronger

        request = LockRequest(txn_id, resource, mode)
        if self._grantable(state, request):
            self._do_grant(state, request)
            return request

        state.queue.append(request)
        self._queued_by_txn[txn_id] = self._queued_by_txn.get(txn_id, 0) + 1
        self.waits += 1
        if self._in_cycle(txn_id):
            state.queue.remove(request)
            self._unqueue(txn_id)
            self.deadlocks += 1
            raise DeadlockDetected(
                f"txn {txn_id} would deadlock acquiring {mode.value} on {resource}"
            )
        return request

    def _unqueue(self, txn_id: TxnId, count: int = 1) -> None:
        remaining = self._queued_by_txn.get(txn_id, 0) - count
        if remaining > 0:
            self._queued_by_txn[txn_id] = remaining
        else:
            self._queued_by_txn.pop(txn_id, None)

    def _grantable(self, state: _LockState, request: LockRequest) -> bool:
        other_holders = [
            m for t, m in state.holders.items() if t != request.txn_id
        ]
        upgrade = request.txn_id in state.holders
        if any(not _compatible(request.mode, m) for m in other_holders):
            return False
        if upgrade:
            # Upgrades skip the queue (they already hold S), so only the
            # other holders matter.
            return True
        # FIFO fairness: a fresh request waits behind any queued request.
        return not state.queue

    def _do_grant(self, state: _LockState, request: LockRequest) -> None:
        state.holders[request.txn_id] = request.mode
        self._held_by_txn.setdefault(request.txn_id, {})[request.resource] = None
        self.grants += 1
        request._grant()

    # -- release ---------------------------------------------------------------
    def release_all(self, txn_id: TxnId) -> None:
        """Release every lock and queued request of ``txn_id``."""
        resources = self._held_by_txn.pop(txn_id, {})
        touched: Dict[Hashable, None] = dict.fromkeys(resources)
        # Purge queued (never-granted) requests on any resource; skipped
        # entirely when the transaction never queued (the common case).
        if self._queued_by_txn.pop(txn_id, 0):
            for resource, state in self._states.items():
                before = len(state.queue)
                if before:
                    state.queue = deque(r for r in state.queue if r.txn_id != txn_id)
                    if len(state.queue) != before:
                        touched.setdefault(resource, None)
        for resource in resources:
            state = self._states[resource]
            state.holders.pop(txn_id, None)
        for resource in touched:
            self._promote(self._states[resource])
        # Drop empty states to bound memory over long runs.
        for resource in touched:
            state = self._states[resource]
            if not state.holders and not state.queue:
                del self._states[resource]

    def _promote(self, state: _LockState) -> None:
        """Grant queued requests now compatible, preserving FIFO order."""
        while state.queue:
            request = state.queue[0]
            other_holders = [
                m for t, m in state.holders.items() if t != request.txn_id
            ]
            if any(not _compatible(request.mode, m) for m in other_holders):
                break
            state.queue.popleft()
            self._unqueue(request.txn_id)
            self._do_grant(state, request)
            if request.mode is LockMode.EXCLUSIVE:
                break

    # -- introspection ------------------------------------------------------------
    def held(self, txn_id: TxnId) -> Set[Hashable]:
        return set(self._held_by_txn.get(txn_id, ()))

    def mode_held(self, txn_id: TxnId, resource: Hashable) -> Optional[LockMode]:
        state = self._states.get(resource)
        return state.holders.get(txn_id) if state else None

    def holders_of(self, resource: Hashable) -> Dict[TxnId, LockMode]:
        state = self._states.get(resource)
        return dict(state.holders) if state else {}

    def is_locked(self, resource: Hashable) -> bool:
        state = self._states.get(resource)
        return bool(state and (state.holders or state.queue))

    def exclusively_locked(self, resource: Hashable) -> bool:
        """True if any transaction holds X on ``resource`` (dirty-page test)."""
        state = self._states.get(resource)
        return bool(state) and LockMode.EXCLUSIVE in state.holders.values()

    def exclusively_locked_by_other(self, resource: Hashable, txn_id: TxnId) -> bool:
        """True if a transaction other than ``txn_id`` holds X on ``resource``."""
        state = self._states.get(resource)
        if state is None:
            return False
        for holder, mode in state.holders.items():
            if mode is LockMode.EXCLUSIVE and holder != txn_id:
                return True
        return False

    # -- deadlock detection ------------------------------------------------------
    def _wait_edges(self) -> Dict[TxnId, Set[TxnId]]:
        edges: Dict[TxnId, Set[TxnId]] = {}
        for state in self._states.values():
            blockers: List[TxnId] = list(state.holders)
            for request in state.queue:
                waits_on = edges.setdefault(request.txn_id, set())
                for blocker in blockers:
                    if blocker != request.txn_id:
                        waits_on.add(blocker)
                blockers.append(request.txn_id)  # FIFO: also waits on queue predecessors
        return edges

    def _in_cycle(self, start: TxnId) -> bool:
        edges = self._wait_edges()
        stack = list(edges.get(start, ()))
        seen: Set[TxnId] = set()
        while stack:
            txn = stack.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(edges.get(txn, ()))
        return False
