"""Version-aware hash and tree indexes.

The paper replicates index structure physically (index pages are memory
pages too).  We substitute *logical* multiversion index maintenance (see
DESIGN.md §2): every index entry carries

* ``insert_v`` — the version vector entry at which the row became visible
  (``None`` while the writing master transaction is uncommitted), and
* ``delete_v`` — ``None`` while live, the :data:`PENDING` sentinel while an
  uncommitted master transaction is deleting it, or the commit version of
  the delete.

Masters create *pending* entries in place and stamp them with the commit
version at pre-commit; slaves create already-stamped entries eagerly when a
write-set arrives, while the data pages themselves are still applied
lazily.  Reads filter entries by their transaction's version tag (or read
"current state" when untagged, as masters do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.counters import Counters
from repro.common.errors import SchemaError
from repro.common.ids import PageId, TxnId
from repro.engine.rbtree import RedBlackTree

#: Sentinel for "delete written but not yet committed".
PENDING = object()

Loc = Tuple[PageId, int]
Key = Tuple


@dataclass
class IndexEntry:
    """One (key -> row location) fact with its version validity window."""

    loc: Loc
    insert_v: Optional[int]  # None = pending insert
    delete_v: object = None  # None | PENDING | int
    writer: Optional[TxnId] = None  # txn that created / is deleting it

    def visible(self, reader: Optional[TxnId], tag_v: Optional[int]) -> bool:
        """Is this entry part of the state the reader should observe?

        ``tag_v is None`` means a current-state read (master side):
        committed deletes are invisible, pending inserts are visible (the
        reader will block on the page lock and re-check the slot), and a
        pending delete is invisible only to the deleting transaction.
        """
        if tag_v is None:
            if isinstance(self.delete_v, int):
                return False
            if self.delete_v is PENDING and self.writer == reader:
                return False
            return True
        if self.insert_v is None or self.insert_v > tag_v:
            return False
        if isinstance(self.delete_v, int) and self.delete_v <= tag_v:
            return False
        return True


def encode_key(key: Key) -> Key:
    """Make keys totally ordered even when components are NULL.

    Each component becomes ``(0, '')`` for NULL or ``(1, value)`` otherwise,
    so NULLs sort first and never get compared against typed values.
    :data:`COMPONENT_MAX` sorts after every encoded component, which lets
    range planners build exclusive/inclusive prefix bounds.
    """
    return tuple((0, "") if v is None else (1, v) for v in key)


#: Sorts after every encoded key component; used to build prefix bounds.
COMPONENT_MAX = (2,)


def prefix_bounds(
    eq_prefix: Key,
    low: Optional[Tuple[object, bool]] = None,
    high: Optional[Tuple[object, bool]] = None,
) -> Tuple[Optional[Key], Optional[Key]]:
    """Encoded (lo, hi) bounds for "prefix equal, next component in range".

    ``low``/``high`` are ``(value, inclusive)`` pairs applying to the key
    component right after the equality prefix.  The returned bounds follow
    the tree's half-open ``lo <= key < hi`` convention.
    """
    prefix_enc = encode_key(eq_prefix)
    if low is None:
        lo = prefix_enc if (eq_prefix or high is not None) else None
    else:
        value, inclusive = low
        lo = prefix_enc + (encode_key((value,))[0],)
        if not inclusive:
            lo = lo + (COMPONENT_MAX,)
    if high is None:
        hi = prefix_enc + (COMPONENT_MAX,) if eq_prefix or low is not None else None
    else:
        value, inclusive = high
        hi = prefix_enc + (encode_key((value,))[0],)
        if inclusive:
            hi = hi + (COMPONENT_MAX,)
    return lo, hi


class _BucketOps:
    """Shared bucket manipulation for both index flavours."""

    def __init__(self, name: str, table: str, counters: Counters) -> None:
        self.name = name
        self.table = table
        self.counters = counters
        self.entry_count = 0

    # Subclasses provide _bucket(key, create) and _drop_bucket(key).

    def _find(self, bucket, loc: Loc, state: str) -> Optional[IndexEntry]:
        """Find the entry at ``loc`` in the given lifecycle state.

        Slot reuse means several entries (dead, live, pending) can share a
        location, so lookups must also match on state:

        * ``"pending-insert"`` — insert_v is None,
        * ``"pending-delete"`` — delete_v is PENDING,
        * ``"live"`` — committed insert, no delete in progress.
        """
        for entry in bucket or ():
            if entry.loc != loc:
                continue
            if state == "pending-insert" and entry.insert_v is None:
                return entry
            if state == "pending-delete" and entry.delete_v is PENDING:
                return entry
            if state == "live" and entry.delete_v is None:
                # "live" = no delete in progress; a pending insert counts
                # (a txn may delete a row it inserted itself).
                return entry
        return None

    # -- master write path (pending entries) ---------------------------------
    def add_pending(self, key: Key, loc: Loc, writer: TxnId) -> None:
        bucket = self._bucket(key, create=True)
        bucket.append(IndexEntry(loc, None, None, writer))
        self.entry_count += 1

    def mark_delete_pending(self, key: Key, loc: Loc, writer: TxnId) -> None:
        entry = self._live_entry(key, loc)
        entry.delete_v = PENDING
        entry.writer = writer

    # -- commit stamping / abort revert ---------------------------------------
    def stamp_insert(self, key: Key, loc: Loc, version: int) -> None:
        entry = self._find(self._bucket(key, create=False), loc, "pending-insert")
        if entry is None:
            raise SchemaError(f"{self.name}: no pending insert for {key}/{loc}")
        entry.insert_v = version
        entry.writer = None

    def stamp_delete(self, key: Key, loc: Loc, version: int) -> None:
        entry = self._find(self._bucket(key, create=False), loc, "pending-delete")
        if entry is None:
            raise SchemaError(f"{self.name}: no pending delete for {key}/{loc}")
        entry.delete_v = version
        entry.writer = None

    def revert_insert(self, key: Key, loc: Loc) -> None:
        bucket = self._bucket(key, create=False)
        entry = self._find(bucket, loc, "pending-insert")
        if entry is None:
            raise SchemaError(f"{self.name}: no entry to revert for {key}/{loc}")
        bucket.remove(entry)
        self.entry_count -= 1
        if not bucket:
            self._drop_bucket(key)

    def revert_delete(self, key: Key, loc: Loc) -> None:
        entry = self._find(self._bucket(key, create=False), loc, "pending-delete")
        if entry is None:
            raise SchemaError(f"{self.name}: no pending delete to revert for {key}/{loc}")
        entry.delete_v = None
        entry.writer = None

    # -- slave apply path (already committed) ----------------------------------
    def add_committed(self, key: Key, loc: Loc, version: int) -> None:
        bucket = self._bucket(key, create=True)
        bucket.append(IndexEntry(loc, version, None, None))
        self.entry_count += 1

    def mark_delete_committed(self, key: Key, loc: Loc, version: int) -> None:
        entry = self._live_entry(key, loc)
        entry.delete_v = version

    def remove_committed(self, key: Key, loc: Loc, version: int) -> None:
        """Undo an :meth:`add_committed` (master-failure write-set discard)."""
        bucket = self._bucket(key, create=False)
        for entry in bucket or ():
            if entry.loc == loc and entry.insert_v == version:
                bucket.remove(entry)
                self.entry_count -= 1
                if not bucket:
                    self._drop_bucket(key)
                return
        raise SchemaError(f"{self.name}: no committed entry v{version} for {key}/{loc}")

    def unmark_delete_committed(self, key: Key, loc: Loc, version: int) -> None:
        """Undo a :meth:`mark_delete_committed` (write-set discard)."""
        bucket = self._bucket(key, create=False)
        for entry in bucket or ():
            if entry.loc == loc and entry.delete_v == version:
                entry.delete_v = None
                return
        raise SchemaError(f"{self.name}: no committed delete v{version} for {key}/{loc}")

    def _live_entry(self, key: Key, loc: Loc) -> IndexEntry:
        entry = self._find(self._bucket(key, create=False), loc, "live")
        if entry is None:
            raise SchemaError(f"{self.name}: no live entry for {key} at {loc}")
        return entry

    # -- reads -------------------------------------------------------------------
    def lookup(self, key: Key, reader: Optional[TxnId], tag_v: Optional[int]) -> List[Loc]:
        self.counters.add("index.lookups")
        bucket = self._bucket(key, create=False)
        if not bucket:
            return []
        return [e.loc for e in bucket if e.visible(reader, tag_v)]

    def has_live(self, key: Key, reader: Optional[TxnId], tag_v: Optional[int]) -> bool:
        return bool(self.lookup(key, reader, tag_v))

    # -- garbage collection --------------------------------------------------------
    def _gc_bucket(self, bucket: List[IndexEntry], watermark: int) -> int:
        before = len(bucket)
        bucket[:] = [
            e
            for e in bucket
            if not (isinstance(e.delete_v, int) and e.delete_v <= watermark)
        ]
        removed = before - len(bucket)
        self.entry_count -= removed
        return removed


class VersionedHashIndex(_BucketOps):
    """Equality-only index (primary keys and unique lookups)."""

    def __init__(self, name: str, table: str, counters: Optional[Counters] = None) -> None:
        super().__init__(name, table, counters if counters is not None else Counters())
        self._buckets: Dict[Key, List[IndexEntry]] = {}

    def _bucket(self, key: Key, create: bool) -> Optional[List[IndexEntry]]:
        key = encode_key(key)
        if create:
            return self._buckets.setdefault(key, [])
        return self._buckets.get(key)

    def _drop_bucket(self, key: Key) -> None:
        self._buckets.pop(encode_key(key), None)

    def gc(self, watermark: int) -> int:
        removed = 0
        for key in list(self._buckets):
            bucket = self._buckets[key]
            removed += self._gc_bucket(bucket, watermark)
            if not bucket:
                del self._buckets[key]
        return removed


class VersionedTreeIndex(_BucketOps):
    """Range-capable index backed by the red–black tree.

    Tree rotations are surfaced into the counters ("index.rotations") so
    the simulation can charge the master's RB-tree rebalancing cost that
    the paper blames for ordering-mix saturation.
    """

    def __init__(self, name: str, table: str, counters: Optional[Counters] = None) -> None:
        super().__init__(name, table, counters if counters is not None else Counters())
        self._tree = RedBlackTree()

    def _bucket(self, key: Key, create: bool) -> Optional[List[IndexEntry]]:
        key = encode_key(key)
        before = self._tree.rotations
        if create:
            bucket = self._tree.setdefault(key, list)
        else:
            bucket = self._tree.get(key)
        rotations = self._tree.rotations - before
        if rotations:
            self.counters.add("index.rotations", rotations)
        return bucket

    def _drop_bucket(self, key: Key) -> None:
        before = self._tree.rotations
        self._tree.delete(encode_key(key))
        rotations = self._tree.rotations - before
        if rotations:
            self.counters.add("index.rotations", rotations)

    def range_lookup(
        self,
        lo: Optional[Key],
        hi: Optional[Key],
        reader: Optional[TxnId],
        tag_v: Optional[int],
        reverse: bool = False,
    ) -> Iterator[Loc]:
        """Locations with ``lo <= key < hi`` in (reverse) key order.

        Prefix bounds are supported by passing partial keys: a bound tuple
        shorter than the index key compares prefix-wise, which is exactly
        Python tuple comparison.
        """
        lo_enc = encode_key(lo) if lo is not None else None
        hi_enc = encode_key(hi) if hi is not None else None
        yield from self.range_lookup_encoded(lo_enc, hi_enc, reader, tag_v, reverse)

    def range_lookup_encoded(
        self,
        lo_enc: Optional[Key],
        hi_enc: Optional[Key],
        reader: Optional[TxnId],
        tag_v: Optional[int],
        reverse: bool = False,
    ) -> Iterator[Loc]:
        """Range scan with pre-encoded bounds (see :func:`prefix_bounds`)."""
        self.counters.add("index.range_scans")
        for _key, bucket in self._tree.range_items(lo_enc, hi_enc, reverse=reverse):
            for entry in bucket:
                if entry.visible(reader, tag_v):
                    yield entry.loc

    def scan_all(
        self, reader: Optional[TxnId], tag_v: Optional[int], reverse: bool = False
    ) -> Iterator[Loc]:
        yield from self.range_lookup(None, None, reader, tag_v, reverse=reverse)

    def gc(self, watermark: int) -> int:
        removed = 0
        empty_keys = []
        for key, bucket in self._tree.items():
            removed += self._gc_bucket(bucket, watermark)
            if not bucket:
                empty_keys.append(key)
        for key in empty_keys:
            self._tree.delete(key)
        return removed
