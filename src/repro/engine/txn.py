"""Transactions: state, undo journal, redo write-set, savepoints.

A transaction's undo journal is a list of row-level
:class:`UndoRecord` entries; reverting the journal suffix (statement
rollback) or the whole journal (abort) restores both page contents and
index entries.  The redo side — the ordered page-op write-set — is what the
master broadcasts at pre-commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.ids import PageId, TxnId
from repro.common.versions import VersionVector
from repro.storage.ops import PageOp


class TxnMode(enum.Enum):
    READ_ONLY = "ro"
    UPDATE = "update"


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class UndoRecord:
    """Before/after images of one row-slot change."""

    table: str
    page_id: PageId
    slot: int
    before: Optional[Tuple]
    after: Optional[Tuple]


@dataclass(slots=True)
class Savepoint:
    """Journal/write-set lengths at statement start (statement rollback)."""

    journal_len: int
    redo_len: int


@dataclass
class Transaction:
    """One transaction executing against a :class:`~repro.engine.HeapEngine`."""

    txn_id: TxnId
    mode: TxnMode
    #: Version tag for read-only transactions on DMV slaves; ``None`` means
    #: "read current state" (masters, stand-alone engines, the disk baseline).
    tag: Optional[VersionVector] = None
    state: TxnState = TxnState.ACTIVE
    #: Tables this transaction intends to write (declared at begin).  2PL
    #: controllers take X locks even for *reads* of these tables, killing
    #: S->X upgrade deadlocks on read-modify-write patterns.
    write_intent: Set[str] = field(default_factory=set)
    journal: List[UndoRecord] = field(default_factory=list)
    redo: List[PageOp] = field(default_factory=list)
    tables_written: Set[str] = field(default_factory=set)
    pages_read: Set[PageId] = field(default_factory=set)
    #: OCC read-set: page -> mutation stamp observed at *first* read.  Only
    #: populated when the engine's controller is optimistic; 2PL leaves it
    #: empty.
    read_stamps: Dict[PageId, int] = field(default_factory=dict)
    start_time: float = 0.0

    @property
    def read_only(self) -> bool:
        return self.mode is TxnMode.READ_ONLY

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise RuntimeError(f"txn {self.txn_id} is {self.state.value}, not active")

    def savepoint(self) -> Savepoint:
        return Savepoint(len(self.journal), len(self.redo))

    def truncate_to(self, savepoint: Savepoint) -> List[UndoRecord]:
        """Pop and return journal entries after ``savepoint`` (newest first)."""
        suffix = self.journal[savepoint.journal_len:]
        del self.journal[savepoint.journal_len:]
        del self.redo[savepoint.redo_len:]
        suffix.reverse()
        return suffix
