"""Heap tables: row operations over slotted pages plus index maintenance.

A table executes the *master-side* write path (in-place page mutation,
undo journal, redo page-ops, pending index entries) and the shared read
path (fetch / scan / index lookups).  The slave-side lazy page application
lives in :mod:`repro.core.slave`; it calls back into
:meth:`Table.index_apply_committed` for eager index maintenance.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.common.errors import SchemaError, TransactionAborted
from repro.common.ids import PageId
from repro.engine.indexes import Key, Loc, VersionedHashIndex, VersionedTreeIndex
from repro.engine.schema import TableSchema
from repro.engine.txn import Transaction, UndoRecord
from repro.storage.ops import OpKind, PageOp, delta_update_op
from repro.storage.page import Page, Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import HeapEngine


class Table:
    """One table: schema + pages + a primary hash index + tree indexes."""

    __slots__ = (
        "schema",
        "name",
        "engine",
        "store",
        "counters",
        "pk_index",
        "indexes",
        "_index_cols",
        "_index_positions",
        "row_count",
        "_nonfull",
    )

    def __init__(self, schema: TableSchema, engine: "HeapEngine") -> None:
        self.schema = schema
        self.name = schema.name
        self.engine = engine
        self.store = engine.store
        self.counters = engine.counters
        self.pk_index = VersionedHashIndex(f"{self.name}.pk", self.name, self.counters)
        self.indexes: Dict[str, VersionedTreeIndex] = {
            idx.name: VersionedTreeIndex(idx.name, self.name, self.counters)
            for idx in schema.indexes
        }
        self._index_cols: Dict[str, Tuple[str, ...]] = {
            idx.name: idx.columns for idx in schema.indexes
        }
        #: Column positions per secondary index (delta-encoding fast path).
        self._index_positions: Dict[str, Tuple[int, ...]] = {
            idx.name: tuple(schema.position(c) for c in idx.columns)
            for idx in schema.indexes
        }
        self.row_count = 0
        self._nonfull: List[Page] = []

    # -- version tag helper ----------------------------------------------------
    def _tag_v(self, txn: Transaction) -> Optional[int]:
        return txn.tag.get(self.name) if txn.tag is not None else None

    # -- write path (masters and stand-alone engines) ---------------------------
    def insert_row(self, txn: Transaction, values: Dict[str, object]) -> Loc:
        """Insert one row; returns its (page, slot) location."""
        txn.require_active()
        row = self.schema.row_from_dict(values)
        pk = self.schema.pk_of(row)
        if self.pk_index.has_live(pk, txn.txn_id, None):
            raise TransactionAborted(
                f"duplicate primary key {pk} in {self.name}", reason="duplicate-key"
            )
        page, slot = self._allocate_slot(txn)
        loc: Loc = (page.page_id, slot)
        page.put(slot, row)
        txn.journal.append(UndoRecord(self.name, page.page_id, slot, None, row))
        txn.redo.append(PageOp(page.page_id, OpKind.INSERT, slot, row))
        txn.tables_written.add(self.name)
        self.pk_index.add_pending(pk, loc, txn.txn_id)
        for name, cols in self._index_cols.items():
            self.indexes[name].add_pending(self.schema.key_of(row, cols), loc, txn.txn_id)
        self.row_count += 1
        self.counters.add("engine.rows_inserted")
        return loc

    def update_row(self, txn: Transaction, loc: Loc, changes: Dict[str, object]) -> None:
        """Apply column changes to the row at ``loc`` (PK must not change)."""
        txn.require_active()
        page = self.store.get(loc[0])
        self.engine.touch_write(txn, page)
        before = page.get(loc[1])
        if before is None:
            raise SchemaError(f"update of empty slot {loc} in {self.name}")
        after = self.schema.updated_row(before, changes)
        if self.schema.pk_of(before) != self.schema.pk_of(after):
            raise SchemaError(f"primary key update unsupported on {self.name}")
        page.put(loc[1], after)
        txn.journal.append(UndoRecord(self.name, loc[0], loc[1], before, after))
        txn.redo.append(
            delta_update_op(loc[0], loc[1], before, after, self._index_positions.values())
        )
        txn.tables_written.add(self.name)
        for name, cols in self._index_cols.items():
            old_key = self.schema.key_of(before, cols)
            new_key = self.schema.key_of(after, cols)
            if old_key != new_key:
                self.indexes[name].mark_delete_pending(old_key, loc, txn.txn_id)
                self.indexes[name].add_pending(new_key, loc, txn.txn_id)
        self.counters.add("engine.rows_updated")

    def delete_row(self, txn: Transaction, loc: Loc) -> None:
        txn.require_active()
        page = self.store.get(loc[0])
        self.engine.touch_write(txn, page)
        before = page.get(loc[1])
        if before is None:
            raise SchemaError(f"delete of empty slot {loc} in {self.name}")
        page.put(loc[1], None)
        txn.journal.append(UndoRecord(self.name, loc[0], loc[1], before, None))
        txn.redo.append(PageOp(loc[0], OpKind.DELETE, loc[1], None, before))
        txn.tables_written.add(self.name)
        self.pk_index.mark_delete_pending(self.schema.pk_of(before), loc, txn.txn_id)
        for name, cols in self._index_cols.items():
            self.indexes[name].mark_delete_pending(
                self.schema.key_of(before, cols), loc, txn.txn_id
            )
        self.row_count -= 1
        self._remember_nonfull(page)
        self.counters.add("engine.rows_deleted")

    #: Inserts are striped over several non-full pages.  A single append
    #: page would serialise every concurrent inserting transaction on one
    #: X page lock (the classic last-page hotspot); real storage managers
    #: keep multiple insert free lists for exactly this reason.
    INSERT_STRIPES = 8

    def _allocate_slot(self, txn: Transaction) -> Tuple[Page, int]:
        self._nonfull = [p for p in self._nonfull if not p.full]
        candidates = self._nonfull
        if candidates:
            start = txn.txn_id % len(candidates)
            rotated = candidates[start:] + candidates[:start]
            unlocked = [
                p for p in rotated
                if not self.engine.controller.write_locked_by_other(txn, p)
            ]
            # Prefer a page no other transaction holds exclusively.
            for page in unlocked:
                self.engine.touch_write(txn, page)
                slot = page.first_free_slot()
                if slot is not None:
                    return page, slot
        if len(self._nonfull) < self.INSERT_STRIPES:
            # Open a new stripe rather than blocking on a locked page.
            page = self.store.allocate(self.name)
            self._nonfull.append(page)
            self.engine.touch_write(txn, page)
            slot = page.first_free_slot()
            assert slot is not None
            return page, slot
        # Stripe budget exhausted and every stripe is locked: block on the
        # transaction's own stripe choice (FIFO fairness via the lock queue).
        page = candidates[txn.txn_id % len(candidates)]
        self.engine.touch_write(txn, page)
        slot = page.first_free_slot()
        if slot is None:  # raced to full while waiting for the lock
            page = self.store.allocate(self.name)
            self._nonfull.append(page)
            self.engine.touch_write(txn, page)
            slot = page.first_free_slot()
        return page, slot

    def _remember_nonfull(self, page: Page) -> None:
        if not page.full and (not self._nonfull or self._nonfull[-1] is not page):
            if page not in self._nonfull:
                self._nonfull.append(page)

    # -- read path -----------------------------------------------------------------
    def fetch(self, txn: Transaction, loc: Loc) -> Optional[Row]:
        """Row at ``loc``, or None for a dead slot (stale index entry)."""
        page = self.store.get(loc[0])
        self.engine.touch_read(txn, page)
        self.counters.add("engine.rows_read")
        return page.get(loc[1])

    def fetch_for_update(self, txn: Transaction, loc: Loc) -> Optional[Row]:
        """Fetch taking the write lock immediately (UPDATE/DELETE scans).

        Acquiring X up front avoids the classic S->X upgrade deadlock when
        two DML statements target rows on the same page.
        """
        page = self.store.get(loc[0])
        self.engine.touch_write(txn, page)
        self.counters.add("engine.rows_read")
        return page.get(loc[1])

    def scan(self, txn: Transaction) -> Iterator[Tuple[Loc, Row]]:
        """Full table scan in page order."""
        self.counters.add("engine.table_scans")
        for page in list(self.store.pages_of(self.name)):
            self.engine.touch_read(txn, page)
            for slot, row in page.iter_live():
                self.counters.add("engine.rows_read")
                yield (page.page_id, slot), row

    def pk_lookup(self, txn: Transaction, key: Key) -> List[Loc]:
        return self.pk_index.lookup(key, txn.txn_id, self._tag_v(txn))

    def index_lookup(self, txn: Transaction, index_name: str, key: Key) -> List[Loc]:
        index = self._index(index_name)
        return index.lookup(key, txn.txn_id, self._tag_v(txn))

    def index_range(
        self,
        txn: Transaction,
        index_name: str,
        lo: Optional[Key],
        hi: Optional[Key],
        reverse: bool = False,
    ) -> Iterator[Loc]:
        index = self._index(index_name)
        return index.range_lookup(lo, hi, txn.txn_id, self._tag_v(txn), reverse=reverse)

    def index_range_encoded(
        self,
        txn: Transaction,
        index_name: str,
        lo_enc,
        hi_enc,
        reverse: bool = False,
    ) -> Iterator[Loc]:
        """Range scan with pre-encoded bounds (SQL planner fast path)."""
        index = self._index(index_name)
        return index.range_lookup_encoded(
            lo_enc, hi_enc, txn.txn_id, self._tag_v(txn), reverse=reverse
        )

    def _index(self, name: str) -> VersionedTreeIndex:
        try:
            return self.indexes[name]
        except KeyError:
            raise SchemaError(f"no index {name!r} on {self.name}") from None

    # -- commit / abort bookkeeping ---------------------------------------------------
    def stamp_commit(self, records: Sequence[UndoRecord], version: int) -> None:
        """Stamp this table's pending index entries with the commit version."""
        for record in records:
            loc: Loc = (record.page_id, record.slot)
            if record.before is None and record.after is not None:
                self.pk_index.stamp_insert(self.schema.pk_of(record.after), loc, version)
                for name, cols in self._index_cols.items():
                    self.indexes[name].stamp_insert(
                        self.schema.key_of(record.after, cols), loc, version
                    )
            elif record.after is None and record.before is not None:
                self.pk_index.stamp_delete(self.schema.pk_of(record.before), loc, version)
                for name, cols in self._index_cols.items():
                    self.indexes[name].stamp_delete(
                        self.schema.key_of(record.before, cols), loc, version
                    )
            else:
                for name, cols in self._index_cols.items():
                    old_key = self.schema.key_of(record.before, cols)
                    new_key = self.schema.key_of(record.after, cols)
                    if old_key != new_key:
                        self.indexes[name].stamp_delete(old_key, loc, version)
                        self.indexes[name].stamp_insert(new_key, loc, version)

    def revert(self, record: UndoRecord) -> None:
        """Undo one journal record (page slot + index entries)."""
        page = self.store.get(record.page_id)
        page.put(record.slot, record.before)
        loc: Loc = (record.page_id, record.slot)
        if record.before is None and record.after is not None:
            self.pk_index.revert_insert(self.schema.pk_of(record.after), loc)
            for name, cols in self._index_cols.items():
                self.indexes[name].revert_insert(self.schema.key_of(record.after, cols), loc)
            self.row_count -= 1
            self._remember_nonfull(page)
        elif record.after is None and record.before is not None:
            self.pk_index.revert_delete(self.schema.pk_of(record.before), loc)
            for name, cols in self._index_cols.items():
                self.indexes[name].revert_delete(self.schema.key_of(record.before, cols), loc)
            self.row_count += 1
        else:
            for name, cols in self._index_cols.items():
                old_key = self.schema.key_of(record.before, cols)
                new_key = self.schema.key_of(record.after, cols)
                if old_key != new_key:
                    self.indexes[name].revert_insert(new_key, loc)
                    self.indexes[name].revert_delete(old_key, loc)

    # -- slave apply path -----------------------------------------------------------
    def update_index_keys(self, op: PageOp) -> List[Tuple[str, Tuple, Tuple]]:
        """``(index, old_key, new_key)`` for indexes an UPDATE op changes.

        Works for both full-image ops (before/after rows present) and
        delta-encoded ops (changed-column bitmap plus index-relevant
        before-columns) — the single reconstruction point shared by eager
        index maintenance and master-failure index rollback.
        """
        changed: List[Tuple[str, Tuple, Tuple]] = []
        if op.is_delta:
            before_values = dict(op.index_before or ())
            delta_values = dict(op.delta_items())
            for name, positions in self._index_positions.items():
                if not any((op.delta_mask >> p) & 1 for p in positions):
                    continue  # no key column changed: keys are equal
                old_key = tuple(before_values[p] for p in positions)
                new_key = tuple(delta_values.get(p, before_values[p]) for p in positions)
                if old_key != new_key:
                    changed.append((name, old_key, new_key))
        else:
            for name, cols in self._index_cols.items():
                old_key = self.schema.key_of(op.before, cols)
                new_key = self.schema.key_of(op.row, cols)
                if old_key != new_key:
                    changed.append((name, old_key, new_key))
        return changed

    def index_apply_committed(self, op: PageOp, version: int) -> None:
        """Eager index maintenance for one committed replicated op."""
        loc: Loc = (op.page_id, op.slot)
        if op.kind is OpKind.INSERT:
            self.pk_index.add_committed(self.schema.pk_of(op.row), loc, version)
            for name, cols in self._index_cols.items():
                self.indexes[name].add_committed(self.schema.key_of(op.row, cols), loc, version)
            self.row_count += 1
        elif op.kind is OpKind.DELETE:
            self.pk_index.mark_delete_committed(self.schema.pk_of(op.before), loc, version)
            for name, cols in self._index_cols.items():
                self.indexes[name].mark_delete_committed(
                    self.schema.key_of(op.before, cols), loc, version
                )
            self.row_count -= 1
        else:
            for name, old_key, new_key in self.update_index_keys(op):
                self.indexes[name].mark_delete_committed(old_key, loc, version)
                self.indexes[name].add_committed(new_key, loc, version)

    def bulk_load(self, rows, version: int = 0) -> int:
        """Load committed rows directly, bypassing transaction machinery.

        Used for initial database population (the paper's "mmap an on-disk
        database" step) and for index rebuilds after data migration.  Index
        entries are stamped ``version`` (0 = visible at any tag).
        """
        count = 0
        for values in rows:
            row = self.schema.row_from_dict(values) if isinstance(values, dict) else tuple(values)
            page, slot = self._bulk_slot()
            page.put(slot, row)
            page.version = max(page.version, version)
            loc: Loc = (page.page_id, slot)
            self.pk_index.add_committed(self.schema.pk_of(row), loc, version)
            for name, cols in self._index_cols.items():
                self.indexes[name].add_committed(self.schema.key_of(row, cols), loc, version)
            count += 1
        self.row_count += count
        return count

    def _bulk_slot(self) -> Tuple[Page, int]:
        while self._nonfull:
            page = self._nonfull[-1]
            slot = page.first_free_slot()
            if slot is not None:
                return page, slot
            self._nonfull.pop()
        page = self.store.allocate(self.name)
        self._nonfull.append(page)
        return page, page.first_free_slot()

    def rebuild_indexes(self) -> None:
        """Rebuild all index structures from current page contents.

        Entries get ``insert_v = 0``: correct for a node that will only
        serve tags at or above its catch-up version (reintegration path).
        """
        self.pk_index = VersionedHashIndex(f"{self.name}.pk", self.name, self.counters)
        self.indexes = {
            name: VersionedTreeIndex(name, self.name, self.counters)
            for name in self._index_cols
        }
        self.row_count = 0
        self._nonfull = []
        for page in self.store.pages_of(self.name):
            for slot, row in page.iter_live():
                loc: Loc = (page.page_id, slot)
                self.pk_index.add_committed(self.schema.pk_of(row), loc, 0)
                for name, cols in self._index_cols.items():
                    self.indexes[name].add_committed(self.schema.key_of(row, cols), loc, 0)
                self.row_count += 1
            if not page.full:
                self._nonfull.append(page)

    def gc_index_entries(self, watermark: int) -> int:
        """Drop index entries deleted at or before ``watermark``."""
        removed = self.pk_index.gc(watermark)
        for index in self.indexes.values():
            removed += index.gc(watermark)
        return removed
