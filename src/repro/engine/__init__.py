"""Transactional in-memory table engine (the MySQL ``REPLICATED_HEAP`` stand-in).

The engine stores rows in slotted pages (:mod:`repro.storage`), indexes them
with hash and red–black-tree indexes, and runs transactions with undo/redo
logging.  Concurrency control is pluggable through an
:class:`~repro.engine.engine.AccessController`:

* masters use timestamp-ordered optimistic read validation
  (:class:`OccReadValidation`, the default) or page-granular two-phase
  locking (:class:`TwoPhaseLocking`),
* DMV slaves materialise page versions lazily
  (:class:`repro.core.slave.SlaveController`),
* the on-disk baseline adds buffer-pool and WAL accounting
  (:mod:`repro.disk`).
"""

from repro.engine.schema import Column, IndexDef, TableSchema
from repro.engine.rbtree import RedBlackTree
from repro.engine.locks import LockManager, LockMode
from repro.engine.txn import Transaction, TxnMode, TxnState
from repro.engine.table import Table
from repro.engine.indexes import IndexEntry, Loc, VersionedHashIndex, VersionedTreeIndex
from repro.engine.engine import (
    AccessController,
    HeapEngine,
    LockWait,
    OccReadValidation,
    PassThroughController,
    TwoPhaseLocking,
    make_update_controller,
)

__all__ = [
    "Column",
    "IndexDef",
    "TableSchema",
    "RedBlackTree",
    "LockManager",
    "LockMode",
    "Transaction",
    "TxnMode",
    "TxnState",
    "Table",
    "Loc",
    "HeapEngine",
    "AccessController",
    "PassThroughController",
    "TwoPhaseLocking",
    "OccReadValidation",
    "make_update_controller",
    "LockWait",
    "IndexEntry",
    "VersionedHashIndex",
    "VersionedTreeIndex",
]
