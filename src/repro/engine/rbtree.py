"""A red–black tree sorted map.

The paper attributes master saturation under the ordering mix to "costly
index updates ... due to rebalancing for inserts in the RB-tree index data
structure", so the index substrate here is a genuine red–black tree with
rotation accounting (the cost model charges per rotation and per node
visited).

Keys must be mutually comparable (the engine uses tuples); each key maps to
one payload object, typically an index bucket.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any, color: bool, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """Sorted map with O(log n) insert/delete/search and range scans."""

    def __init__(self) -> None:
        self.nil = _Node(None, None, BLACK, None)  # type: ignore[arg-type]
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil
        self.size = 0
        self.rotations = 0
        self.node_visits = 0

    # -- search ---------------------------------------------------------------
    def _find(self, key: Any) -> "_Node":
        node = self.root
        while node is not self.nil:
            self.node_visits += 1
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return self.nil

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not self.nil else default

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not self.nil

    def __len__(self) -> int:
        return self.size

    def setdefault(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Get the payload for ``key``, inserting ``factory()`` if absent."""
        node = self._find(key)
        if node is not self.nil:
            return node.value
        value = factory()
        self.insert(key, value)
        return value

    # -- rotations ----------------------------------------------------------
    def _rotate_left(self, x: "_Node") -> None:
        self.rotations += 1
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: "_Node") -> None:
        self.rotations += 1
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # -- insert ---------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; replaces the payload if key exists."""
        parent = self.nil
        node = self.root
        while node is not self.nil:
            self.node_visits += 1
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self.nil)
        fresh.parent = parent
        if parent is self.nil:
            self.root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self.size += 1
        self._insert_fixup(fresh)

    def _insert_fixup(self, z: "_Node") -> None:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        self.root.color = BLACK

    # -- delete ---------------------------------------------------------------
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if it was absent."""
        z = self._find(key)
        if z is self.nil:
            return False
        self.size -= 1
        y = z
        y_color = y.color
        if z.left is self.nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self.nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x)
        return True

    def _transplant(self, u: "_Node", v: "_Node") -> None:
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: "_Node") -> "_Node":
        while node.left is not self.nil:
            self.node_visits += 1
            node = node.left
        return node

    def _delete_fixup(self, x: "_Node") -> None:
        while x is not self.root and x.color is BLACK:
            if x is x.parent.left:
                sibling = x.parent.right
                if sibling.color is RED:
                    sibling.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    sibling = x.parent.right
                if sibling.left.color is BLACK and sibling.right.color is BLACK:
                    sibling.color = RED
                    x = x.parent
                else:
                    if sibling.right.color is BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = x.parent.right
                    sibling.color = x.parent.color
                    x.parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                sibling = x.parent.left
                if sibling.color is RED:
                    sibling.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    sibling = x.parent.left
                if sibling.right.color is BLACK and sibling.left.color is BLACK:
                    sibling.color = RED
                    x = x.parent
                else:
                    if sibling.left.color is BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = x.parent.left
                    sibling.color = x.parent.color
                    x.parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # -- iteration ----------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        yield from self._inorder(self.root)

    def _inorder(self, node: "_Node") -> Iterator[Tuple[Any, Any]]:
        # Iterative in-order traversal: avoids recursion limits on big tables.
        stack = []
        current = node
        while stack or current is not self.nil:
            while current is not self.nil:
                stack.append(current)
                current = current.left
            current = stack.pop()
            yield current.key, current.value
            current = current.right

    def range_items(
        self, lo: Any = None, hi: Any = None, reverse: bool = False
    ) -> Iterator[Tuple[Any, Any]]:
        """(key, value) pairs with ``lo <= key < hi`` in (reverse) key order.

        ``None`` bounds are open.  Runs in O(log n + matches).
        """
        if reverse:
            yield from self._range_desc(self.root, lo, hi)
        else:
            yield from self._range_asc(self.root, lo, hi)

    def _range_asc(self, node: "_Node", lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        stack = []
        current = node
        while stack or current is not self.nil:
            while current is not self.nil:
                self.node_visits += 1
                if lo is not None and current.key < lo:
                    current = current.right
                    continue
                stack.append(current)
                current = current.left
            if not stack:
                return
            current = stack.pop()
            if hi is not None and not current.key < hi:
                return
            if lo is None or not current.key < lo:
                yield current.key, current.value
            current = current.right

    def _range_desc(self, node: "_Node", lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        stack = []
        current = node
        while stack or current is not self.nil:
            while current is not self.nil:
                self.node_visits += 1
                if hi is not None and not current.key < hi:
                    current = current.left
                    continue
                stack.append(current)
                current = current.right
            if not stack:
                return
            current = stack.pop()
            if lo is not None and current.key < lo:
                return
            yield current.key, current.value
            current = current.left

    def min_item(self) -> Optional[Tuple[Any, Any]]:
        if self.root is self.nil:
            return None
        node = self._minimum(self.root)
        return node.key, node.value

    def max_item(self) -> Optional[Tuple[Any, Any]]:
        node = self.root
        if node is self.nil:
            return None
        while node.right is not self.nil:
            node = node.right
        return node.key, node.value

    # -- invariant checking (used by tests) -----------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if red-black invariants are violated."""
        assert self.root.color is BLACK, "root must be black"

        def walk(node: "_Node") -> int:
            if node is self.nil:
                return 1
            if node.color is RED:
                assert node.left.color is BLACK and node.right.color is BLACK, (
                    "red node with red child"
                )
            if node.left is not self.nil:
                assert node.left.key < node.key, "left child key out of order"
            if node.right is not self.nil:
                assert node.key < node.right.key, "right child key out of order"
            left_black = walk(node.left)
            right_black = walk(node.right)
            assert left_black == right_black, "black height mismatch"
            return left_black + (0 if node.color is RED else 1)

        walk(self.root)
