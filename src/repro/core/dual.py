"""Dual-role access control for multi-master deployments.

With disjoint conflict classes on multiple masters, each master is also a
slave for every class it does not own: it receives other masters' write-
sets and materialises their pages lazily like any slave, while running 2PL
on its own tables.  This controller dispatches per table.
"""

from __future__ import annotations

from typing import Set, TYPE_CHECKING

from repro.common.errors import VersionInconsistency
from repro.engine.engine import AccessController, make_update_controller
from repro.engine.txn import Transaction
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.slave import SlaveReplica


class DualController(AccessController):
    """Update-path CC for owned tables, lazy slave materialisation for the rest.

    The owned-table side runs whichever controller ``read_concurrency``
    selects (2PL or OCC read validation); non-owned tables are read through
    the co-resident slave's version-tagged materialisation, which needs no
    locks or validation at all.
    """

    def __init__(
        self,
        owned_tables: Set[str],
        slave: "SlaveReplica",
        read_concurrency: str = "2pl",
    ) -> None:
        self.owned = set(owned_tables)
        #: Attribute keeps its historical name; it may hold either personality.
        self.twopl = make_update_controller(read_concurrency)
        self.slave = slave

    def attach(self, engine) -> None:
        super().attach(engine)
        self.twopl.attach(engine)

    @property
    def emits_occ_counters(self) -> bool:
        return self.twopl.emits_occ_counters

    def before_read(self, txn: Transaction, page: Page) -> None:
        if page.page_id.table in self.owned:
            self.twopl.before_read(txn, page)
        else:
            self.slave.materialize(page, txn)

    def before_write(self, txn: Transaction, page: Page) -> None:
        if page.page_id.table not in self.owned:
            raise VersionInconsistency(
                f"table {page.page_id.table} is not owned by this master"
            )
        self.twopl.before_write(txn, page)

    def before_prepare(self, txn: Transaction) -> None:
        self.twopl.before_prepare(txn)

    def on_finish(self, txn: Transaction) -> None:
        self.twopl.on_finish(txn)

    def page_is_dirty(self, page: Page) -> bool:
        return self.twopl.page_is_dirty(page)

    def write_locked_by_other(self, txn: Transaction, page: Page) -> bool:
        return self.twopl.write_locked_by_other(txn, page)
