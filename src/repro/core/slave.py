"""The slave replica: eager buffering, lazy per-page version materialisation.

A slave receives every master write-set *before* the master's commit is
acknowledged (eager propagation), but applies page modifications only when
a read-only transaction tagged with a version vector actually touches the
page (lazy application).  This is the core of Dynamic Multiversioning:

* each page's pending-op queue holds committed-but-unapplied modifications
  in version order;
* a read at tag ``V`` applies pending ops with ``version <= V[table]`` and
  leaves the rest queued — materialising exactly the snapshot it must see;
* if the page has already been advanced *past* the reader's tag by a
  concurrent reader with a newer tag, the transaction aborts with
  :class:`~repro.common.errors.VersionInconsistency` (the paper's rare
  abort case, kept under 2.5 % by version-aware scheduling);
* index entries are maintained eagerly on receipt (see DESIGN.md
  substitution #3), so lookups at any tag are correct even while data pages
  lag.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.counters import Counters
from repro.common.errors import SchemaError, VersionInconsistency
from repro.common.ids import NodeId, PageId
from repro.common.versions import VersionVector
from repro.engine.engine import AccessController, HeapEngine
from repro.engine.txn import Transaction, TxnMode
from repro.storage.checkpoint import PageImage
from repro.storage.ops import OpKind, PageOp
from repro.storage.page import Page
from repro.core.writeset import WriteSet


class SlaveController(AccessController):
    """Access controller wiring engine page reads to lazy materialisation."""

    def __init__(self, slave: "SlaveReplica") -> None:
        self.slave = slave

    def before_read(self, txn: Transaction, page: Page) -> None:
        self.slave.materialize(page, txn)

    def before_write(self, txn: Transaction, page: Page) -> None:
        raise VersionInconsistency(
            f"slave {self.slave.node_id} cannot execute writes", required=-1, found=-1
        )


class SlaveReplica:
    """One slave database replica of the in-memory tier."""

    def __init__(
        self,
        node_id: NodeId,
        engine: Optional[HeapEngine] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        self.node_id = node_id
        self.counters = counters if counters is not None else Counters()
        if engine is None:
            engine = HeapEngine(counters=self.counters, name=f"slave:{node_id}")
        self.engine = engine
        self.engine.set_controller(SlaveController(self))
        #: page -> ordered queue of (version, PageOp) not yet applied.
        self.pending: Dict[PageId, Deque[Tuple[int, object]]] = {}
        #: Highest versions received from masters (per table).
        self.received_versions = VersionVector()
        #: Duplicate filter over write-set identities (idempotent receive).
        #: Keys of discarded write-sets are kept: a retransmission of a
        #: broadcast that master-failure cleanup already dropped must not be
        #: re-buffered after its producer is gone.
        self._seen_write_sets: set = set()
        #: While True (node catching up after a restart), received write-sets
        #: are buffered WITHOUT index maintenance — the indexes will be
        #: rebuilt from page contents once migration completes.
        self.catching_up = False
        #: Running count of buffered-but-unapplied ops, maintained at every
        #: queue mutation so the buffer-bound invariant can audit it in O(1)
        #: (``pending_op_count()`` recomputes the truth for drift checks).
        self.pending_ops = 0
        #: Steady-state high-water mark of :attr:`pending_ops`.  Growth
        #: during catch-up mode is excused: buffering while pages migrate
        #: is the *point* of catch-up, and the migration prunes the queue
        #: when the covering images land.
        self.pending_ops_peak = 0

    # -- replication receive path ---------------------------------------------------
    def is_duplicate(self, write_set: WriteSet) -> bool:
        """True if this broadcast was already received (retransmit/dup)
        or its effects are already covered by this replica's page images.

        The coverage test matters after reintegration: a write-set dropped
        on the wire before the node failed may be retransmitted after data
        migration has already installed its effects — the dedup identity
        set is empty for it, but re-applying it would corrupt the eagerly
        maintained indexes.  Coverage is judged per PAGE, not per table:
        same-page transactions serialize on the master's page locks, so a
        page image at version ``v`` provably contains every op at or below
        ``v`` — while table-level version vectors may legitimately arrive
        out of order (non-conflicting commits broadcast concurrently).
        """
        if write_set.dedup_key() in self._seen_write_sets:
            return True
        if not write_set.ops:
            return False
        store = self.engine.store
        return all(
            store.contains(op.page_id)
            and write_set.versions[op.page_id.table] <= store.get(op.page_id).version
            for op in write_set.ops
        )

    def receive(self, write_set: WriteSet) -> None:
        """Buffer one write-set: queue page ops, maintain indexes eagerly.

        Receipt is idempotent: a write-set whose identity was seen before
        (ack lost → master retransmitted, or the link duplicated the
        message) is dropped without touching queues or indexes.
        """
        key = write_set.dedup_key()
        if self.is_duplicate(write_set):
            self.counters.add("net.dups_ignored")
            self._seen_write_sets.add(key)
            return
        self._seen_write_sets.add(key)
        for op in write_set.ops:
            version = write_set.versions[op.page_id.table]
            page = self.engine.store.get_or_allocate(op.page_id)
            queue = self.pending.get(op.page_id)
            if queue is None:
                queue = self.pending[op.page_id] = deque()
            queue.append((version, op))
            if not self.catching_up:
                self.engine.table(op.page_id.table).index_apply_committed(op, version)
            _ = page  # page allocated so scans see it before materialisation
        self.received_versions.merge(VersionVector(write_set.versions))
        self.pending_ops += len(write_set.ops)
        if not self.catching_up and self.pending_ops > self.pending_ops_peak:
            self.pending_ops_peak = self.pending_ops
        self.counters.add("slave.write_sets_received")
        self.counters.add("slave.ops_buffered", len(write_set.ops))

    def restore_write_set(self, write_set: WriteSet) -> int:
        """WAL-redo receive (restart-from-own-disk path); returns ops buffered.

        Differs from :meth:`receive` in two deliberate ways.  First, no
        replication counters move: this write-set was already counted when
        it was delivered over the wire before the crash, so counting it
        again would break the send/receive conservation invariant.  Second,
        coverage is judged per *op*, not per write-set: the restored
        checkpoint may hold some of a record's pages at a version past the
        record (their later redo records were truncated as covered), so
        replaying a covered op would regress slots to stale values.  The
        dedup identity is always recorded and the watermark always merged —
        the durable state covers the record either way.
        """
        key = write_set.dedup_key()
        self._seen_write_sets.add(key)
        store = self.engine.store
        buffered = 0
        for op in write_set.ops:
            version = write_set.versions[op.page_id.table]
            page = store.get_or_allocate(op.page_id)
            if version <= page.version:
                continue  # checkpoint image already contains this op
            queue = self.pending.get(op.page_id)
            if queue is None:
                queue = self.pending[op.page_id] = deque()
            queue.append((version, op))
            buffered += 1
            if not self.catching_up:
                self.engine.table(op.page_id.table).index_apply_committed(op, version)
        self.received_versions.merge(VersionVector(write_set.versions))
        self.pending_ops += buffered
        return buffered

    # -- lazy materialisation ----------------------------------------------------------
    #
    # Index entries are maintained eagerly at receive time, so the *only*
    # job of materialisation is to bring the page image to the target
    # version.  Intermediate row images are dead work: the queue is
    # collapsed to the last writer per slot (folding delta ops into each
    # other or into a preceding full image), turning deep-queue
    # materialisation from O(ops) page writes into O(slots touched).

    def _coalesce(
        self, queue: Deque[Tuple[int, PageOp]], target: Optional[int]
    ) -> Tuple[Dict[int, Tuple[str, object]], int, int]:
        """Pop ops at-or-below ``target``; return the per-slot plan.

        The plan maps slot -> ("full", row_or_None) | ("delta", {pos: val}).
        Returns ``(plan, top_version, popped)``.
        """
        plan: Dict[int, Tuple[str, object]] = {}
        top = -1
        popped = 0
        while queue:
            version, op = queue[0]
            if target is not None and version > target:
                break
            queue.popleft()
            popped += 1
            if version > top:
                top = version
            if op.kind is OpKind.DELETE:
                plan[op.slot] = ("full", None)
            elif not op.is_delta:
                plan[op.slot] = ("full", op.row)
            else:
                state = plan.get(op.slot)
                if state is None:
                    plan[op.slot] = ("delta", dict(op.delta_items()))
                elif state[0] == "delta":
                    state[1].update(op.delta_items())
                elif state[1] is None:
                    raise SchemaError(
                        f"delta update of deleted slot {op.slot} on {op.page_id}"
                    )
                else:
                    plan[op.slot] = ("full", op.apply_delta(state[1]))
        self.pending_ops -= popped
        return plan, top, popped

    def _apply_plan(
        self, page: Page, plan: Dict[int, Tuple[str, object]], top: int, popped: int
    ) -> None:
        for slot, (shape, payload) in plan.items():
            if shape == "full":
                page.put(slot, payload)
            else:
                base = page.get(slot)
                if base is None:
                    raise SchemaError(
                        f"delta update of empty slot {slot} on {page.page_id}"
                    )
                row = list(base)
                for position, value in payload.items():
                    row[position] = value
                page.put(slot, tuple(row))
        if top > page.version:
            page.version = top
        if plan:
            self.counters.add("slave.ops_applied", len(plan))
        if popped > len(plan):
            self.counters.add("slave.ops_coalesced", popped - len(plan))

    def materialize(self, page: Page, txn: Transaction) -> None:
        """Bring ``page`` to the version ``txn`` must read.

        Untagged transactions (``tag is None``) read the newest received
        state: everything pending is applied.
        """
        table = page.page_id.table
        target = txn.tag.get(table) if txn.tag is not None else None
        if target is not None and page.version > target:
            self.counters.add("slave.version_aborts")
            raise VersionInconsistency(
                f"page {page.page_id} at v{page.version}, txn needs v{target}",
                required=target,
                found=page.version,
            )
        queue = self.pending.get(page.page_id)
        if not queue:
            return
        parent = getattr(txn, "obs_span", None)
        span = None
        if parent is not None and parent.recording:
            # Nested under the execute span of the statement whose read
            # triggered this materialisation (see exec_statement's swap).
            span = parent.child(
                "apply",
                node=self.node_id,
                page=str(page.page_id),
                target=target if target is not None else -1,
                queued=len(queue),
            )
        plan, top, popped = self._coalesce(queue, target)
        if popped:
            self._apply_plan(page, plan, top, popped)
        if not queue:
            del self.pending[page.page_id]
        if span is not None:
            span.finish(
                popped=popped,
                applied=len(plan) if popped else 0,
                coalesced=max(0, popped - len(plan)),
                status="applied" if popped else "noop",
            )

    def apply_all_pending(self) -> int:
        """Apply every buffered op (promotion / catch-up / checkpoint prep).

        Returns the number of buffered ops consumed (coalesced-away ops
        included — callers size promotion work by queue depth).
        """
        consumed = 0
        for page_id in list(self.pending):
            page = self.engine.store.get(page_id)
            queue = self.pending.pop(page_id)
            plan, top, popped = self._coalesce(queue, None)
            self._apply_plan(page, plan, top, popped)
            consumed += popped
        return consumed

    def drain_to(self, versions: VersionVector) -> int:
        """Eagerly apply the confirmed prefix of every pending queue.

        Buffer-cap backpressure: when the buffer crosses its high
        watermark and demotion is not available (last subscribed slave),
        the replica sheds load by materialising everything at-or-below
        the scheduler's confirmed ``versions`` instead of buffering
        deeper.  Ops above the frontier stay queued — applying an
        unconfirmed op could not be rolled back on master failure.

        Returns the number of buffered ops consumed.
        """
        consumed = 0
        for page_id in list(self.pending):
            target = versions.get(page_id.table)
            queue = self.pending[page_id]
            if not queue or queue[0][0] > target:
                continue
            page = self.engine.store.get(page_id)
            plan, top, popped = self._coalesce(queue, target)
            if popped:
                self._apply_plan(page, plan, top, popped)
            if not queue:
                del self.pending[page_id]
            consumed += popped
        return consumed

    def materialize_fully(self, page_id: PageId) -> Page:
        """Apply all pending ops of one page (migration snapshot source)."""
        page = self.engine.store.get(page_id)
        queue = self.pending.pop(page_id, None)
        if queue:
            plan, top, popped = self._coalesce(queue, None)
            self._apply_plan(page, plan, top, popped)
        return page

    # -- transactions --------------------------------------------------------------------
    def begin_read_only(self, tag: VersionVector) -> Transaction:
        return self.engine.begin(TxnMode.READ_ONLY, tag=tag.copy())

    # -- failure reconfiguration -----------------------------------------------------------
    def discard_above(self, versions: VersionVector) -> int:
        """Drop buffered ops newer than ``versions`` (master-failure cleanup).

        Removes partially propagated pre-commit write-sets whose commit the
        failed master never acknowledged, and rolls back the eager index
        entries they created.
        """
        discarded = 0
        for page_id in list(self.pending):
            queue = self.pending[page_id]
            keep: Deque[Tuple[int, object]] = deque()
            dropped: List[Tuple[int, object]] = []
            for version, op in queue:
                if version <= versions.get(page_id.table):
                    keep.append((version, op))
                else:
                    dropped.append((version, op))
            # Undo the eager index maintenance in reverse receive order:
            # an insert-then-delete of the same key (one transaction's
            # write-set) must unmark the delete while the entry still
            # exists, then remove the entry the insert created.  A
            # catching-up replica skipped the eager maintenance, so there
            # is nothing to revert (finish_catchup rebuilds from pages).
            if not self.catching_up:
                for version, op in reversed(dropped):
                    self._revert_index_entries(op, version)
            discarded += len(dropped)
            if keep:
                self.pending[page_id] = keep
            else:
                del self.pending[page_id]
        # Truncate the received watermark back to the confirmed versions.
        truncated = VersionVector()
        for table, version in self.received_versions.items():
            truncated.set(table, min(version, max(versions.get(table), 0)))
        self.received_versions = truncated
        # A discarded write-set is no longer "received": its effects were
        # just reverted, so if it is ever re-delivered (rejoin gap replay,
        # late retransmission) it must be re-applied, not dedup-dropped.
        self._seen_write_sets = {
            key
            for key in self._seen_write_sets
            if all(version <= versions.get(table) for table, version in key[2])
        }
        self.pending_ops -= discarded
        if discarded:
            self.counters.add("slave.ops_discarded", discarded)
        return discarded

    def _revert_index_entries(self, op, version: int) -> None:
        """Inverse of the eager index maintenance done in :meth:`receive`."""
        table = self.engine.table(op.page_id.table)
        loc = (op.page_id, op.slot)
        schema = table.schema
        if op.kind is OpKind.INSERT:
            table.pk_index.remove_committed(schema.pk_of(op.row), loc, version)
            for name, cols in table._index_cols.items():
                table.indexes[name].remove_committed(schema.key_of(op.row, cols), loc, version)
            table.row_count -= 1
        elif op.kind is OpKind.DELETE:
            table.pk_index.unmark_delete_committed(schema.pk_of(op.before), loc, version)
            for name, cols in table._index_cols.items():
                table.indexes[name].unmark_delete_committed(
                    schema.key_of(op.before, cols), loc, version
                )
            table.row_count += 1
        else:
            for name, old_key, new_key in table.update_index_keys(op):
                table.indexes[name].remove_committed(new_key, loc, version)
                table.indexes[name].unmark_delete_committed(old_key, loc, version)

    # -- data migration support ------------------------------------------------------------
    def page_versions(self) -> Dict[PageId, int]:
        """Current page -> version map including pending-queue headroom."""
        versions = self.engine.store.version_map()
        for page_id, queue in self.pending.items():
            if queue:
                versions[page_id] = max(versions.get(page_id, 0), queue[-1][0])
        return versions

    def snapshot_pages_newer_than(
        self, wanted: Dict[PageId, int]
    ) -> List[PageImage]:
        """Support-slave side of data migration: pages newer than ``wanted``.

        Pages are fully materialised before snapshotting so the receiver
        can reach the current database version with only its own buffered
        ops from subscription time onward.
        """
        images: List[PageImage] = []
        for page in list(self.engine.store.all_pages()):
            have = wanted.get(page.page_id, -1)
            latest = page.version
            queue = self.pending.get(page.page_id)
            if queue:
                latest = max(latest, queue[-1][0])
            if latest > have:
                full = self.materialize_fully(page.page_id)
                snapshot = full.snapshot()
                images.append(PageImage(page.page_id, snapshot.version, snapshot))
                self.counters.add("migration.pages_sent")
        return images

    def receive_page(self, image: PageImage) -> None:
        """Joining-node side: install a migrated page, drop covered ops."""
        page = self.engine.store.get_or_allocate(image.page_id)
        page.load_from(image.page)
        queue = self.pending.get(image.page_id)
        if queue:
            kept = deque(
                (version, op) for version, op in queue if version > image.version
            )
            self.pending_ops -= len(queue) - len(kept)
            if kept:
                self.pending[image.page_id] = kept
            else:
                del self.pending[image.page_id]
        self.counters.add("migration.pages_received")

    def finish_catchup(self) -> None:
        """End catch-up mode: rebuild indexes, index-apply remaining ops."""
        if not self.catching_up:
            raise RuntimeError("finish_catchup called outside catch-up mode")
        self.engine.rebuild_all_indexes()
        for page_id, queue in self.pending.items():
            for version, op in queue:
                self.engine.table(page_id.table).index_apply_committed(op, version)
        self.catching_up = False

    def pending_op_count(self) -> int:
        return sum(len(q) for q in self.pending.values())

    # -- version garbage collection -----------------------------------------------------
    def gc_watermark(self, scheduler_latest: VersionVector) -> VersionVector:
        """Oldest versions any current or future reader can require.

        New readers are tagged with the scheduler's latest vector; active
        readers pin their own tags.  The watermark is the elementwise
        minimum over all of them.
        """
        watermark = scheduler_latest.copy()
        for txn in self.engine.active_transactions():
            if txn.tag is not None:
                watermark.floor_with(txn.tag)
        return watermark

    def gc_versions(self, scheduler_latest: VersionVector) -> int:
        """Collect index entries deleted at or below the watermark.

        Bounds the memory growth of the version-aware indexes — the
        equivalent of the copy garbage collection that stand-alone
        multiversion databases must run (paper §2.1), but needed only for
        *deleted* entries because DMV never keeps multiple row copies.
        """
        removed = self.engine.gc_index_entries(self.gc_watermark(scheduler_latest))
        if removed:
            self.counters.add("slave.gc_entries", removed)
        return removed
