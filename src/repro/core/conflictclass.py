"""Conflict classes: partitioning update transactions across masters.

The scheduler is pre-configured with the application's transaction
templates and the tables each accesses.  Tables co-written by any template
must share a conflict class (the paper requires classes to be *disjoint*,
so no inter-master synchronisation is ever needed); the classes are the
connected components of the "co-written" relation, computed by union-find.

Each class is assigned one master.  If templates are unknown, everything
collapses into a single class on a single master — the paper's fallback.

Dynamic sharding: the union-find components are kept as immutable *atoms*
(the finest partition any template allows), and a conflict class is a
grouping of whole atoms.  ``split_class`` / ``merge_classes`` regroup
atoms and ``rehome_class`` repoints a class at a new master; every
mutation bumps ``assignment_epoch``, the stamp the scheduler's routing
table carries so in-flight transactions never straddle a re-home.
Because splits move whole atoms, no co-written template can ever span two
classes, and because every table belongs to exactly one atom and every
atom to exactly one class, disjointness survives any split/merge/re-home
sequence by construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ConfigError


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


class ConflictClassMap:
    """table -> conflict class id, plus class -> master assignment."""

    def __init__(self, tables: Iterable[str], write_templates: Sequence[Set[str]] = ()) -> None:
        """``write_templates``: the table write-sets of known txn templates."""
        self.tables = sorted(tables)
        uf = _UnionFind()
        for table in self.tables:
            uf.add(table)
        for template in write_templates:
            unknown = set(template) - set(self.tables)
            if unknown:
                raise ConfigError(f"templates reference unknown tables: {sorted(unknown)}")
            template_list = sorted(template)
            for other in template_list[1:]:
                uf.union(template_list[0], other)
        roots = sorted({uf.find(t) for t in self.tables})
        self._class_of_root = {root: i for i, root in enumerate(roots)}
        self._class_of_table = {t: self._class_of_root[uf.find(t)] for t in self.tables}
        self.num_classes = len(roots)
        self._master_of_class: Dict[int, str] = {}
        # Atoms: the union-find components themselves, frozen.  Classes may
        # later be regrouped, but never below atom granularity.
        self.atoms: Tuple[FrozenSet[str], ...] = tuple(
            frozenset(t for t in self.tables if uf.find(t) == root) for root in roots
        )
        self._atom_of_table: Dict[str, int] = {
            t: i for i, atom in enumerate(self.atoms) for t in sorted(atom)
        }
        #: Bumped on every split/merge/re-home/reassign; the scheduler's
        #: class->master routing table is stamped with this epoch.
        self.assignment_epoch: int = 0
        self._next_class_id: int = self.num_classes

    @classmethod
    def single_class(cls, tables: Iterable[str]) -> "ConflictClassMap":
        """The fallback: all tables in one class on one master."""
        tables = list(tables)
        return cls(tables, [set(tables)] if tables else ())

    # -- class queries -------------------------------------------------------------
    def class_of(self, table: str) -> int:
        try:
            return self._class_of_table[table]
        except KeyError:
            raise ConfigError(f"table {table!r} not covered by conflict classes") from None

    def class_of_tables(self, tables: Iterable[str]) -> int:
        """The single class containing all ``tables`` (update routing)."""
        classes = {self.class_of(t) for t in tables}
        if len(classes) != 1:
            raise ConfigError(
                f"tables {sorted(tables)} span conflict classes {sorted(classes)}"
            )
        return classes.pop()

    def tables_of_class(self, class_id: int) -> List[str]:
        return sorted(t for t, c in self._class_of_table.items() if c == class_id)

    def class_ids(self) -> List[int]:
        """The current class ids, sorted (ids may be sparse after merges)."""
        return sorted(set(self._class_of_table.values()))

    def atoms_of_class(self, class_id: int) -> List[int]:
        """Atom indices grouped under ``class_id``, sorted."""
        return sorted(
            {self._atom_of_table[t] for t, c in self._class_of_table.items() if c == class_id}
        )

    # -- master assignment ------------------------------------------------------------
    def assign_masters(self, master_ids: Sequence[str]) -> None:
        """Distribute conflict classes over the given master nodes.

        Classes are assigned round-robin in decreasing size order, so the
        substantial (write-heavy) classes land on different masters instead
        of accidentally sharing one while singleton read-only classes soak
        up the other.
        """
        if not master_ids:
            raise ConfigError("need at least one master")
        by_size = sorted(
            self.class_ids(),
            key=lambda c: (-len(self.tables_of_class(c)), c),
        )
        self._master_of_class = {
            class_id: master_ids[position % len(master_ids)]
            for position, class_id in enumerate(by_size)
        }

    def master_of_class(self, class_id: int) -> str:
        try:
            return self._master_of_class[class_id]
        except KeyError:
            raise ConfigError("masters not assigned") from None

    def master_for_tables(self, tables: Iterable[str]) -> str:
        return self.master_of_class(self.class_of_tables(tables))

    def masters_in_use(self) -> List[str]:
        return sorted(set(self._master_of_class.values()))

    def reassign_master(self, old: str, new: str) -> int:
        """Point every class owned by ``old`` at ``new`` (failover)."""
        moved = 0
        for class_id, master in list(self._master_of_class.items()):
            if master == old:
                self._master_of_class[class_id] = new
                moved += 1
        if moved:
            self.assignment_epoch += 1
        return moved

    # -- dynamic sharding ---------------------------------------------------------
    def split_class(self, class_id: int) -> Optional[int]:
        """Split ``class_id`` along atom boundaries into two classes.

        The class's atoms (sorted by index) are divided in half; the first
        half stays, the second half becomes a new class on the *same*
        master (re-home it separately).  Returns the new class id, or
        ``None`` when the class is a single atom — the floor below which
        a co-written template would straddle classes.
        """
        atom_ids = self.atoms_of_class(class_id)
        if len(atom_ids) < 2:
            return None
        moving = set(atom_ids[(len(atom_ids) + 1) // 2 :])
        new_id = self._next_class_id
        self._next_class_id += 1
        for table, cls in self._class_of_table.items():
            if cls == class_id and self._atom_of_table[table] in moving:
                self._class_of_table[table] = new_id
        if class_id in self._master_of_class:
            self._master_of_class[new_id] = self._master_of_class[class_id]
        self.num_classes += 1
        self.assignment_epoch += 1
        return new_id

    def merge_classes(self, keep: int, absorb: int) -> int:
        """Fold class ``absorb`` into ``keep`` (which keeps its master)."""
        if keep == absorb:
            return keep
        if absorb not in set(self._class_of_table.values()):
            raise ConfigError(f"unknown conflict class {absorb}")
        for table, cls in self._class_of_table.items():
            if cls == absorb:
                self._class_of_table[table] = keep
        self._master_of_class.pop(absorb, None)
        self.num_classes -= 1
        self.assignment_epoch += 1
        return keep

    def rehome_class(self, class_id: int, new_master: str) -> None:
        """Atomically repoint one class at a new master (drained handoff)."""
        if class_id not in set(self._class_of_table.values()):
            raise ConfigError(f"unknown conflict class {class_id}")
        self._master_of_class[class_id] = new_master
        self.assignment_epoch += 1

    def validate_disjoint(self) -> None:
        """Raise unless classes partition the tables along atom boundaries.

        Checks the two disjointness invariants the paper depends on: every
        table is in exactly one class, and no atom (co-written template
        component) is split across classes.
        """
        for table in self.tables:
            if table not in self._class_of_table:
                raise ConfigError(f"table {table!r} lost its conflict class")
        for i, atom in enumerate(self.atoms):
            classes = {self._class_of_table[t] for t in atom}
            if len(classes) != 1:
                raise ConfigError(
                    f"atom {i} ({sorted(atom)}) split across classes {sorted(classes)}"
                )
        assigned = set(self._master_of_class)
        live = set(self._class_of_table.values())
        if assigned and not live <= assigned:
            raise ConfigError(f"classes without a master: {sorted(live - assigned)}")

    def conflicts_with_master(self, master_id: str, tables: Iterable[str]) -> bool:
        """Would a read of ``tables`` on this master touch its own classes?

        The paper allows read-only transactions on a master only when the
        tables they access are *not* in the master's conflict classes.
        """
        owned = {c for c, m in self._master_of_class.items() if m == master_id}
        return any(self.class_of(t) in owned for t in tables)
