"""Dynamic Multiversioning: the paper's replication protocol.

Pure protocol state machines with no simulation or transport dependencies:

* :class:`WriteSet` — the pre-commit broadcast payload,
* :class:`MasterReplica` — update execution, atomic version increment,
  write-set generation (Figure 2 of the paper),
* :class:`SlaveReplica` — eager write-set buffering, eager index
  maintenance, *lazy* per-page version materialisation with
  version-inconsistency abort detection,
* :class:`ConflictClassMap` — table-set based conflict classes for
  multi-master update distribution.

The cluster layer (:mod:`repro.cluster`) moves write-sets and acks between
these objects; the scheduler layer (:mod:`repro.scheduler`) decides where
transactions run and what version tags they carry.
"""

from repro.core.writeset import WriteSet
from repro.core.master import MasterReplica
from repro.core.slave import SlaveController, SlaveReplica
from repro.core.conflictclass import ConflictClassMap

__all__ = [
    "WriteSet",
    "MasterReplica",
    "SlaveReplica",
    "SlaveController",
    "ConflictClassMap",
]
