"""The master replica: update execution and pre-commit write-set generation.

Implements the paper's Figure 2::

    MasterPreCommit(PS):
        WS = CreateWriteSet(PS)
        Increment(DBVerVector, WS)        # atomic
        for each replica R: SendUpdate(R, WS, DBVerVector); WaitForAck(R)
        return DBVerVector

The transport (waiting for acks) is the cluster layer's job; this class
provides the atomic increment + write-set construction
(:meth:`pre_commit`), the local commit after acks (:meth:`finalize`), and
abort paths.  The master's engine runs page-granular two-phase locking, so
non-conflicting update transactions execute concurrently and the 2PL order
is the serialization order the version vector names.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.counters import Counters
from repro.common.errors import TransactionAborted
from repro.common.ids import NodeId
from repro.common.versions import VersionVector
from repro.engine.engine import HeapEngine, make_update_controller
from repro.engine.txn import Transaction, TxnMode
from repro.core.writeset import WriteSet


class MasterReplica:
    """One master database: owns update transactions for its conflict class."""

    def __init__(
        self,
        node_id: NodeId,
        engine: Optional[HeapEngine] = None,
        counters: Optional[Counters] = None,
        read_concurrency: str = "occ",
    ) -> None:
        self.node_id = node_id
        self.counters = counters if counters is not None else Counters()
        if engine is None:
            engine = HeapEngine(
                controller=make_update_controller(read_concurrency),
                counters=self.counters,
                name=f"master:{node_id}",
            )
        self.engine = engine
        #: Broadcast sequence number stamped on every write-set this master
        #: produces; slaves key their duplicate filter on it (plus the
        #: commit versions), making retransmissions idempotent.
        self.broadcast_seq = 0

    # -- transaction lifecycle ---------------------------------------------------
    def begin_update(self, write_tables=()) -> Transaction:
        return self.engine.begin(TxnMode.UPDATE, write_intent=write_tables)

    def begin_read_only(self) -> Transaction:
        """Reads on the master see current state (tables outside its class)."""
        return self.engine.begin(TxnMode.READ_ONLY)

    def pre_commit(self, txn: Transaction) -> Optional[WriteSet]:
        """Figure 2 lines 2-3: freeze the write-set, increment DBVersion.

        Returns ``None`` for transactions with an empty write-set (nothing
        to replicate; the caller commits locally and skips the broadcast).
        The version increment and the write-set construction happen in one
        synchronous step, so write-sets from this master carry per-table
        versions in send order — the slave-side per-page queues rely on it.
        """
        ops = self.engine.prepare_commit(txn)
        if not ops:
            self.engine.stamp_commit(txn, {})
            self.engine.finish_commit(txn)
            return None
        self.engine.versions.increment(txn.tables_written)
        commit_versions: Dict[str, int] = {
            table: self.engine.versions.get(table) for table in txn.tables_written
        }
        self.engine.stamp_commit(txn, commit_versions)
        self.counters.add("master.write_sets")
        self.counters.add("master.ops_replicated", len(ops))
        self.broadcast_seq += 1
        span = getattr(txn, "obs_span", None)
        if span is not None and span.recording:
            # The commit's identity for the trace: which versions this
            # transaction produced and which pages it dirtied (capped so a
            # bulk update cannot bloat one span's tags).
            pages = sorted({op.page_id for op in ops})
            span.annotate(
                versions=dict(commit_versions),
                pages=pages[:32],
                page_count=len(pages),
            )
        return WriteSet(
            self.node_id, txn.txn_id, tuple(ops), commit_versions, seq=self.broadcast_seq
        )

    def finalize(self, txn: Transaction) -> None:
        """Commit locally after all replicas acknowledged (releases locks)."""
        self.engine.finish_commit(txn)

    # -- epoch-batched commit ------------------------------------------------------
    def pre_commit_epoch(self, txn, epoch_versions):
        """Join one commit epoch: per-txn OCC validation, shared versions.

        Like :meth:`pre_commit`, but the version-vector advance is
        amortized across the epoch: each written table's version is
        incremented once per epoch (on the first member that writes it,
        recorded in the caller-owned ``epoch_versions`` dict) and every
        member writing that table commits at the shared epoch version.
        Validation (``prepare_commit``) still runs per transaction, and
        the member's locks are released immediately (early lock release):
        OCC page stamps advance at write time, not commit time, so a later
        reader validates against the already-stamped pages, and an
        unpublished epoch dies only with the whole master — taking every
        dependent local commit with it, exactly like a mid-broadcast
        master crash on the legacy path.

        Returns ``(ops, commit_versions)``; ``ops`` is ``None`` for an
        empty write-set (the txn committed locally, nothing to publish).
        """
        ops = self.engine.prepare_commit(txn)
        if not ops:
            self.engine.stamp_commit(txn, {})
            self.engine.finish_commit(txn)
            return None, {}
        fresh = [t for t in txn.tables_written if t not in epoch_versions]
        if fresh:
            self.engine.versions.increment(fresh)
            for table in fresh:
                epoch_versions[table] = self.engine.versions.get(table)
        commit_versions: Dict[str, int] = {
            table: epoch_versions[table] for table in txn.tables_written
        }
        self.engine.stamp_commit(txn, commit_versions)
        self.counters.add("engine.epoch_batched_commits")
        span = getattr(txn, "obs_span", None)
        if span is not None and span.recording:
            pages = sorted({op.page_id for op in ops})
            span.annotate(
                versions=dict(commit_versions),
                pages=pages[:32],
                page_count=len(pages),
                epoch_member=True,
            )
        self.engine.finish_commit(txn)
        return ops, commit_versions

    def seal_epoch(self, txn_id, ops, epoch_versions, members: int) -> WriteSet:
        """Close one epoch into a single write-set: one seq, one broadcast.

        ``ops`` is the concatenation of every member's ops in commit
        (lock-grant) order, so slave-side last-writer-wins coalescing
        applies them exactly as the master serialized them.
        """
        self.counters.add("engine.epochs")
        self.counters.add("master.write_sets")
        self.counters.add("master.ops_replicated", len(ops))
        self.broadcast_seq += 1
        return WriteSet(
            self.node_id, txn_id, tuple(ops), dict(epoch_versions), seq=self.broadcast_seq
        )

    def abort(self, txn: Transaction, reason: str = "abort") -> None:
        self.engine.abort(txn, reason=reason)

    # -- recovery support ------------------------------------------------------------
    def current_versions(self) -> VersionVector:
        return self.engine.versions.copy()

    def abort_all_active(self) -> int:
        """Scheduler-failure cleanup: abort every in-flight transaction."""
        return self.engine.abort_all_active(reason="scheduler-failure")

    def ensure_can_commit(self, txn: Transaction) -> None:
        if not txn.active:
            raise TransactionAborted(
                f"txn {txn.txn_id} is {txn.state.value}", reason="not-active"
            )
