"""Write-sets: the unit of master -> slave replication.

One write-set carries every page-level modification of one committed update
transaction, plus the per-table commit versions the transaction produced
(the increment of ``DBVersion``).  Write-sets from one master form a total
order per table; slaves buffer them per page and apply lazily.

Wire sizes are computed once per write-set and cached on the frozen
dataclass — a write-set is broadcast to every slave and its size consulted
per hop, so recomputing per hop would charge encode CPU N times for one
encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.ids import NodeId, TxnId
from repro.storage import ops as _ops
from repro.storage.ops import PageOp, ops_size


@dataclass(frozen=True)
class WriteSet:
    """The pre-commit broadcast payload of one update transaction."""

    master_id: NodeId
    txn_id: TxnId
    ops: Tuple[PageOp, ...]
    #: table -> commit version (this transaction's entries of DBVersion).
    versions: Dict[str, int] = field(default_factory=dict)
    #: Per-master broadcast sequence number.  Together with the commit
    #: versions it keys the slaves' duplicate filter, so retransmitted and
    #: link-duplicated write-sets are received idempotently.
    seq: int = 0

    def dedup_key(self) -> Tuple:
        """Identity of this broadcast for the slave-side duplicate filter.

        The commit versions are included alongside ``(master, seq)`` so a
        promoted master whose sequence counter restarts can never collide
        with a retired master's history — per-table versions only move
        forward across reconfigurations.
        """
        return (self.master_id, self.seq, tuple(sorted(self.versions.items())))

    def byte_size(self) -> int:
        """Approximate wire size (network cost accounting); memoized."""
        cached = self.__dict__.get("_byte_size")
        if cached is None:
            _ops.ENCODE_STATS["writeset_sizes"] += 1
            cached = 64 + ops_size(self.ops) + 16 * len(self.versions)
            object.__setattr__(self, "_byte_size", cached)
        return cached

    def bytes_saved(self) -> int:
        """Bytes delta encoding saved vs full-image ops; memoized."""
        cached = self.__dict__.get("_bytes_saved")
        if cached is None:
            cached = sum(_ops.bytes_saved(op) for op in self.ops)
            object.__setattr__(self, "_bytes_saved", cached)
        return cached

    def tables(self) -> List[str]:
        return sorted(self.versions)

    def __len__(self) -> int:
        return len(self.ops)
