"""Write-sets: the unit of master -> slave replication.

One write-set carries every page-level modification of one committed update
transaction, plus the per-table commit versions the transaction produced
(the increment of ``DBVersion``).  Write-sets from one master form a total
order per table; slaves buffer them per page and apply lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.ids import NodeId, TxnId
from repro.storage.ops import PageOp, ops_size


@dataclass(frozen=True)
class WriteSet:
    """The pre-commit broadcast payload of one update transaction."""

    master_id: NodeId
    txn_id: TxnId
    ops: Tuple[PageOp, ...]
    #: table -> commit version (this transaction's entries of DBVersion).
    versions: Dict[str, int] = field(default_factory=dict)

    def byte_size(self) -> int:
        """Approximate wire size (network cost accounting)."""
        return 64 + ops_size(self.ops) + 16 * len(self.versions)

    def tables(self) -> List[str]:
        return sorted(self.versions)

    def __len__(self) -> int:
        return len(self.ops)
